//! Blocking loopback HTTP client: CI probe, loadgen and chaos-harness
//! substrate.
//!
//! [`HttpClient`] holds one keep-alive connection and frames responses
//! by `Content-Length`, so successive requests ride the daemon's
//! multiplexed event plane instead of paying a connect per request; a
//! connection the server closed while idle is detected (EOF before any
//! response byte) and replayed once on a fresh connection. Used by
//! `tcor-sim serve-req` (the ci.sh smoke probe), `tcor-sim bench-serve`
//! and `tcor-sim bench-load` (the deterministic load generators) and
//! `tcor-sim chaos` (the torture loop). The retrying entry points,
//! [`http_request_retrying`] / [`request_retrying`], are the
//! client-side half of the chaos layer's resilience story: capped
//! exponential backoff with seeded deterministic jitter, `Retry-After`
//! honored on 429, and idempotent GETs retried on 5xx, transport
//! failures, short reads and `X-Tcor-Body-Hash` mismatches — so a
//! client survives a daemon being killed, restarted, or fault-injected
//! mid-response.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;
use tcor_common::{fxhash64, ErrorKind, TcorError, TcorResult, Xoshiro256pp};

/// A parsed response.
#[derive(Clone, Debug)]
pub struct HttpReply {
    /// Status code from the status line.
    pub status: u16,
    /// Lowercased header names with values.
    pub headers: Vec<(String, String)>,
    /// Response body bytes, as a string.
    pub body: String,
}

impl HttpReply {
    /// First value of the (case-insensitively named) header.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Checks the reply's own integrity claims: the body length
    /// against `Content-Length` (a mismatch means the connection died
    /// mid-response) and the body bytes against the server's
    /// `X-Tcor-Body-Hash` stamp (a mismatch means in-flight
    /// corruption). Headers that are absent are not required.
    ///
    /// # Errors
    ///
    /// A description of the first failed check.
    pub fn validate(&self) -> Result<(), String> {
        if let Some(want) = self
            .header("content-length")
            .and_then(|v| v.parse::<usize>().ok())
        {
            if self.body.len() != want {
                return Err(format!("short body: {} of {want} bytes", self.body.len()));
            }
        }
        if let Some(want) = self.header("x-tcor-body-hash") {
            let got = format!("{:016x}", fxhash64(self.body.as_bytes()));
            if got != want {
                return Err(format!("body hash mismatch: computed {got}, header {want}"));
            }
        }
        Ok(())
    }

    /// The server's backoff hint, preferring the millisecond-precise
    /// `X-Tcor-Retry-After-Ms` over the integer-seconds `Retry-After`.
    pub fn retry_after(&self) -> Option<Duration> {
        if let Some(ms) = self
            .header("x-tcor-retry-after-ms")
            .and_then(|v| v.parse::<u64>().ok())
        {
            return Some(Duration::from_millis(ms));
        }
        self.header("retry-after")
            .and_then(|v| v.parse::<u64>().ok())
            .map(Duration::from_secs)
    }

    /// Whether the server will keep the connection open after this
    /// reply (absent header defaults to keep-alive, per HTTP/1.1).
    fn keeps_connection(&self) -> bool {
        self.header("connection")
            .is_none_or(|v| !v.split(',').any(|t| t.trim().eq_ignore_ascii_case("close")))
    }
}

/// How far a failed attempt got — decides whether a retry is safe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// Connect failed: no bytes ever reached the server.
    Connect,
    /// The request was (possibly partially) written, but no response
    /// byte came back.
    Sent,
    /// The response started arriving and then broke off.
    ResponseStarted,
}

/// A keep-alive HTTP/1.1 client for one server address.
///
/// Holds the connection across requests and reconnects transparently:
/// lazily on first use, and with a single replay when a *reused*
/// connection turns out to be stale (the server closed it while idle —
/// observed as EOF/reset before any response byte, which also means
/// the server never took the request, so the replay cannot double-run
/// work).
pub struct HttpClient {
    addr: String,
    timeout: Duration,
    stream: Option<TcpStream>,
    rbuf: Vec<u8>,
}

impl HttpClient {
    /// A client for `addr` ("127.0.0.1:8080"); connects on first use.
    pub fn new(addr: impl Into<String>, timeout: Duration) -> Self {
        HttpClient {
            addr: addr.into(),
            timeout,
            stream: None,
            rbuf: Vec::new(),
        }
    }

    /// The server address this client talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Whether a keep-alive connection is currently held.
    pub fn is_connected(&self) -> bool {
        self.stream.is_some()
    }

    /// Sends one request and reads its reply, reusing the held
    /// connection when possible.
    ///
    /// # Errors
    ///
    /// Serve-class errors for connect/transport failures, timeout
    /// expiry, or an unparseable response.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> TcorResult<HttpReply> {
        self.request_inner(method, path, body).map_err(|(_, e)| e)
    }

    /// [`Self::request`], with the error carrying whether any request
    /// bytes may have reached the server (`sent`) — a connect failure
    /// is safe to retry for any method, a post-send failure only for
    /// idempotent ones.
    fn request_inner(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<HttpReply, (bool, TcorError)> {
        let reused = self.stream.is_some();
        match self.attempt(method, path, body) {
            Ok(reply) => Ok(reply),
            Err((phase, e)) => {
                self.reset();
                if reused && phase != Phase::ResponseStarted {
                    // Stale keep-alive: replay once on a fresh
                    // connection (any method — see the type docs).
                    self.attempt(method, path, body).map_err(|(phase, e)| {
                        self.reset();
                        (phase != Phase::Connect, e)
                    })
                } else {
                    Err((phase != Phase::Connect, e))
                }
            }
        }
    }

    fn reset(&mut self) {
        self.stream = None;
        self.rbuf.clear();
    }

    fn attempt(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<HttpReply, (Phase, TcorError)> {
        if self.stream.is_none() {
            let stream = TcpStream::connect(&self.addr).map_err(|e| {
                (
                    Phase::Connect,
                    TcorError::with_source(
                        ErrorKind::Serve,
                        format!("connecting {}", self.addr),
                        e,
                    ),
                )
            })?;
            stream
                .set_read_timeout(Some(self.timeout))
                .and_then(|()| stream.set_write_timeout(Some(self.timeout)))
                .map_err(|e| {
                    (
                        Phase::Connect,
                        TcorError::with_source(ErrorKind::Serve, "setting socket timeouts", e),
                    )
                })?;
            let _ = stream.set_nodelay(true);
            self.rbuf.clear();
            self.stream = Some(stream);
        }
        let body = body.unwrap_or("");
        let request = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n{body}",
            self.addr,
            body.len()
        );
        let stream = self.stream.as_mut().expect("connected above");
        stream.write_all(request.as_bytes()).map_err(|e| {
            (
                Phase::Sent,
                TcorError::with_source(ErrorKind::Serve, "writing request", e),
            )
        })?;
        // Accumulate the head up to the blank line.
        let head_end = loop {
            if let Some(pos) = find_blank_line(&self.rbuf) {
                break pos;
            }
            let started = if self.rbuf.is_empty() {
                Phase::Sent
            } else {
                Phase::ResponseStarted
            };
            match read_chunk(self.stream.as_mut().expect("held"), &mut self.rbuf) {
                Ok(0) => {
                    return Err((
                        started,
                        TcorError::serve("connection closed before a full response head"),
                    ))
                }
                Ok(_) => {}
                Err(e) => {
                    return Err((
                        started,
                        TcorError::with_source(ErrorKind::Serve, "reading response", e),
                    ))
                }
            }
        };
        let head = std::str::from_utf8(&self.rbuf[..head_end])
            .map_err(|_| {
                (
                    Phase::ResponseStarted,
                    TcorError::serve("response head is not UTF-8"),
                )
            })?
            .to_string();
        let (status, headers) = parse_head_block(&head).map_err(|e| (Phase::ResponseStarted, e))?;
        let body_start = head_end + 4;
        let content_length = headers
            .iter()
            .find(|(k, _)| k == "content-length")
            .and_then(|(_, v)| v.parse::<usize>().ok());
        let reply = match content_length {
            Some(n) => {
                while self.rbuf.len() < body_start + n {
                    match read_chunk(self.stream.as_mut().expect("held"), &mut self.rbuf) {
                        Ok(0) => {
                            return Err((
                                Phase::ResponseStarted,
                                TcorError::serve("connection closed mid-body"),
                            ))
                        }
                        Ok(_) => {}
                        Err(e) => {
                            return Err((
                                Phase::ResponseStarted,
                                TcorError::with_source(
                                    ErrorKind::Serve,
                                    "reading response body",
                                    e,
                                ),
                            ))
                        }
                    }
                }
                let body =
                    String::from_utf8_lossy(&self.rbuf[body_start..body_start + n]).into_owned();
                self.rbuf.drain(..body_start + n);
                HttpReply {
                    status,
                    headers,
                    body,
                }
            }
            None => {
                // No length: pre-keep-alive framing — read to EOF, and
                // the connection cannot be reused afterwards.
                loop {
                    match read_chunk(self.stream.as_mut().expect("held"), &mut self.rbuf) {
                        Ok(0) => break,
                        Ok(_) => {}
                        Err(e) => {
                            return Err((
                                Phase::ResponseStarted,
                                TcorError::with_source(
                                    ErrorKind::Serve,
                                    "reading response body",
                                    e,
                                ),
                            ))
                        }
                    }
                }
                let body = String::from_utf8_lossy(&self.rbuf[body_start..]).into_owned();
                self.rbuf.clear();
                let reply = HttpReply {
                    status,
                    headers,
                    body,
                };
                self.stream = None;
                reply
            }
        };
        if self.stream.is_some() && !reply.keeps_connection() {
            self.reset();
        }
        Ok(reply)
    }
}

fn read_chunk(stream: &mut TcpStream, rbuf: &mut Vec<u8>) -> std::io::Result<usize> {
    let mut tmp = [0u8; 16 * 1024];
    loop {
        match stream.read(&mut tmp) {
            Ok(n) => {
                rbuf.extend_from_slice(&tmp[..n]);
                return Ok(n);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

fn find_blank_line(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn parse_head_block(head: &str) -> TcorResult<(u16, Vec<(String, String)>)> {
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or_default();
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| TcorError::serve(format!("bad status line `{status_line}`")))?;
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    Ok((status, headers))
}

/// Retry tuning for [`http_request_retrying`].
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Additional attempts after the first (0 = behave like
    /// [`http_request`] plus reply validation).
    pub retries: u32,
    /// Base backoff; attempt `n` waits ~`backoff * 2^n`, jittered.
    pub backoff: Duration,
    /// Ceiling on any single backoff wait.
    pub max_backoff: Duration,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            retries: 0,
            backoff: Duration::from_millis(100),
            max_backoff: Duration::from_secs(5),
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// A policy with `retries` extra attempts over `backoff` base.
    pub fn new(retries: u32, backoff: Duration, seed: u64) -> Self {
        RetryPolicy {
            retries,
            backoff,
            seed,
            ..RetryPolicy::default()
        }
    }

    /// Capped exponential backoff with deterministic jitter: attempt
    /// `n` waits `min(backoff * 2^n, max_backoff)` scaled by a seeded
    /// factor in [0.5, 1.0), so concurrent retriers with different
    /// seeds decorrelate while one seed replays exactly.
    pub fn delay(&self, attempt: u32) -> Duration {
        let base = self.backoff.as_millis().max(1) as u64;
        let exp = base.saturating_mul(1u64 << attempt.min(16));
        let capped = exp.min(self.max_backoff.as_millis().max(1) as u64);
        let mut rng = Xoshiro256pp::seed_from_u64(self.seed ^ 0x7C0A_11E5 ^ u64::from(attempt));
        let jitter = 0.5 + 0.5 * rng.random_f64();
        Duration::from_millis(((capped as f64) * jitter).round() as u64)
    }
}

/// Sends one `method path` request to `addr` ("127.0.0.1:8080") on a
/// fresh connection and reads the full response.
///
/// # Errors
///
/// Serve-class errors for connect/transport failures, timeout expiry,
/// or an unparseable response.
pub fn http_request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
) -> TcorResult<HttpReply> {
    HttpClient::new(addr, timeout).request(method, path, body)
}

/// [`HttpClient::request`] under a [`RetryPolicy`], reusing `client`'s
/// keep-alive connection across attempts. Returns the reply plus how
/// many retries it took.
///
/// Retried (budget permitting): connect failures (any method — no
/// bytes were sent), and for idempotent GETs also transport failures
/// mid-exchange, unparseable or integrity-failing replies
/// ([`HttpReply::validate`]) and 5xx statuses. A 429 is retried for
/// any method, waiting at least the server's `Retry-After` /
/// `X-Tcor-Retry-After-Ms` hint. A non-retryable (or
/// budget-exhausted) status is returned to the caller as a normal
/// reply, never an error.
///
/// # Errors
///
/// The last transport/validation error once the budget is exhausted.
pub fn request_retrying(
    client: &mut HttpClient,
    method: &str,
    path: &str,
    body: Option<&str>,
    policy: &RetryPolicy,
) -> TcorResult<(HttpReply, u32)> {
    let idempotent = method.eq_ignore_ascii_case("GET");
    let mut attempt = 0u32;
    loop {
        let budget_left = attempt < policy.retries;
        match client.request_inner(method, path, body) {
            Ok(reply) => {
                if let Err(why) = reply.validate() {
                    if idempotent && budget_left {
                        std::thread::sleep(policy.delay(attempt));
                        attempt += 1;
                        continue;
                    }
                    return Err(TcorError::serve(format!(
                        "invalid reply from {} {path}: {why}",
                        client.addr()
                    )));
                }
                let retryable = reply.status == 429 || (reply.status >= 500 && idempotent);
                if retryable && budget_left {
                    let mut wait = policy.delay(attempt);
                    if reply.status == 429 {
                        if let Some(hint) = reply.retry_after() {
                            wait = wait.max(hint);
                        }
                    }
                    std::thread::sleep(wait);
                    attempt += 1;
                    continue;
                }
                return Ok((reply, attempt));
            }
            Err((sent, e)) => {
                if budget_left && (idempotent || !sent) {
                    std::thread::sleep(policy.delay(attempt));
                    attempt += 1;
                    continue;
                }
                return Err(e);
            }
        }
    }
}

/// [`request_retrying`] on a single-use client (one call's attempts
/// still share a keep-alive connection when the server cooperates).
///
/// # Errors
///
/// The last transport/validation error once the budget is exhausted.
pub fn http_request_retrying(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
    policy: &RetryPolicy,
) -> TcorResult<(HttpReply, u32)> {
    let mut client = HttpClient::new(addr, timeout);
    request_retrying(&mut client, method, path, body, policy)
}

/// The `p`-th percentile (0–100) of `samples`, by nearest-rank on a
/// sorted copy. Returns 0.0 for an empty slice.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn parse_reply(raw: &[u8]) -> TcorResult<HttpReply> {
        let pos = find_blank_line(raw)
            .ok_or_else(|| TcorError::serve("response has no header/body separator"))?;
        let head = std::str::from_utf8(&raw[..pos])
            .map_err(|_| TcorError::serve("response is not UTF-8"))?;
        let (status, headers) = parse_head_block(head)?;
        Ok(HttpReply {
            status,
            headers,
            body: String::from_utf8_lossy(&raw[pos + 4..]).into_owned(),
        })
    }

    #[test]
    fn parses_a_reply() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\nX-Tcor-Cache: hit\r\n\r\nok\n";
        let reply = parse_reply(raw).unwrap();
        assert_eq!(reply.status, 200);
        assert_eq!(reply.header("x-tcor-cache"), Some("hit"));
        assert_eq!(reply.body, "ok\n");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_reply(b"not http").is_err());
        assert!(parse_reply(b"HTTP/1.1 banana\r\n\r\n").is_err());
    }

    /// A listener that answers successive connections with scripted
    /// raw bytes (reading the request head first), then exits.
    fn stub(responses: Vec<Vec<u8>>) -> (String, std::thread::JoinHandle<()>) {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || {
            for response in responses {
                let (mut stream, _) = listener.accept().unwrap();
                let mut buf = [0u8; 2048];
                let _ = stream.read(&mut buf);
                let _ = stream.write_all(&response);
            }
        });
        (addr, handle)
    }

    /// A listener that serves `per_conn` scripted responses over each
    /// accepted connection (keep-alive), counting connections.
    fn stub_keepalive(
        per_conn: Vec<Vec<Vec<u8>>>,
        conns: Arc<AtomicUsize>,
    ) -> (String, std::thread::JoinHandle<()>) {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || {
            for responses in per_conn {
                let (mut stream, _) = listener.accept().unwrap();
                conns.fetch_add(1, Ordering::SeqCst);
                for response in responses {
                    let mut buf = [0u8; 2048];
                    let _ = stream.read(&mut buf);
                    let _ = stream.write_all(&response);
                }
            }
        });
        (addr, handle)
    }

    fn ok_with_hash(body: &str) -> Vec<u8> {
        format!(
            "HTTP/1.1 200 OK\r\nContent-Length: {}\r\nX-Tcor-Body-Hash: {:016x}\r\n\r\n{body}",
            body.len(),
            fxhash64(body.as_bytes())
        )
        .into_bytes()
    }

    fn policy(retries: u32) -> RetryPolicy {
        RetryPolicy::new(retries, Duration::from_millis(1), 7)
    }

    #[test]
    fn validate_catches_short_bodies_and_corruption() {
        let good = parse_reply(&ok_with_hash("payload")).unwrap();
        assert!(good.validate().is_ok());
        let short = parse_reply(b"HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nabc").unwrap();
        assert!(short.validate().unwrap_err().contains("short body"));
        let corrupt =
            parse_reply(b"HTTP/1.1 200 OK\r\nX-Tcor-Body-Hash: 0000000000000000\r\n\r\nabc")
                .unwrap();
        assert!(corrupt.validate().unwrap_err().contains("hash mismatch"));
        // No integrity headers: nothing to check.
        assert!(parse_reply(b"HTTP/1.1 200 OK\r\n\r\nabc")
            .unwrap()
            .validate()
            .is_ok());
    }

    #[test]
    fn keep_alive_client_reuses_one_connection() {
        let conns = Arc::new(AtomicUsize::new(0));
        let (addr, h) = stub_keepalive(
            vec![vec![ok_with_hash("first"), ok_with_hash("second")]],
            Arc::clone(&conns),
        );
        let mut client = HttpClient::new(&addr, Duration::from_secs(5));
        let a = client.request("GET", "/a", None).unwrap();
        let b = client.request("GET", "/b", None).unwrap();
        assert_eq!((a.body.as_str(), b.body.as_str()), ("first", "second"));
        assert!(client.is_connected(), "connection retained across requests");
        assert_eq!(conns.load(Ordering::SeqCst), 1, "one connection for both");
        h.join().unwrap();
    }

    #[test]
    fn stale_keep_alive_connection_is_replayed_on_a_fresh_one() {
        let conns = Arc::new(AtomicUsize::new(0));
        // Each connection serves exactly one response, then closes —
        // the second request finds the held connection dead.
        let (addr, h) = stub_keepalive(
            vec![vec![ok_with_hash("one")], vec![ok_with_hash("two")]],
            Arc::clone(&conns),
        );
        let mut client = HttpClient::new(&addr, Duration::from_secs(5));
        assert_eq!(client.request("GET", "/a", None).unwrap().body, "one");
        assert_eq!(
            client.request("POST", "/b", Some("x")).unwrap().body,
            "two",
            "stale reuse replays transparently, even for POST"
        );
        assert_eq!(conns.load(Ordering::SeqCst), 2);
        h.join().unwrap();
    }

    #[test]
    fn connection_close_reply_drops_the_held_connection() {
        let conns = Arc::new(AtomicUsize::new(0));
        let close_reply =
            b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\nConnection: close\r\n\r\nok".to_vec();
        let (addr, h) = stub_keepalive(vec![vec![close_reply]], Arc::clone(&conns));
        let mut client = HttpClient::new(&addr, Duration::from_secs(5));
        assert_eq!(client.request("GET", "/a", None).unwrap().body, "ok");
        assert!(!client.is_connected(), "server said close");
        h.join().unwrap();
    }

    #[test]
    fn retries_short_read_until_a_whole_reply_arrives() {
        let torn = b"HTTP/1.1 200 OK\r\nContent-Length: 40\r\n\r\nonly half of".to_vec();
        let (addr, h) = stub(vec![torn, ok_with_hash("whole\n")]);
        let (reply, retries) =
            http_request_retrying(&addr, "GET", "/x", None, Duration::from_secs(5), &policy(3))
                .unwrap();
        assert_eq!((reply.status, retries), (200, 1));
        assert_eq!(reply.body, "whole\n");
        h.join().unwrap();
    }

    #[test]
    fn retries_corrupted_body_detected_by_hash() {
        let corrupt =
            b"HTTP/1.1 200 OK\r\nContent-Length: 3\r\nX-Tcor-Body-Hash: 0000000000000000\r\n\r\nabc"
                .to_vec();
        let (addr, h) = stub(vec![corrupt, ok_with_hash("clean")]);
        let (reply, retries) =
            http_request_retrying(&addr, "GET", "/x", None, Duration::from_secs(5), &policy(2))
                .unwrap();
        assert_eq!((reply.status, retries), (200, 1));
        assert_eq!(reply.body, "clean");
        h.join().unwrap();
    }

    #[test]
    fn honors_retry_after_hint_on_429() {
        let shed = b"HTTP/1.1 429 Too Many Requests\r\nContent-Length: 0\r\nRetry-After: 1\r\nX-Tcor-Retry-After-Ms: 60\r\n\r\n"
            .to_vec();
        let (addr, h) = stub(vec![shed, ok_with_hash("after backoff")]);
        let start = std::time::Instant::now();
        let (reply, retries) = http_request_retrying(
            &addr,
            "POST",
            "/x",
            Some("body"),
            Duration::from_secs(5),
            &policy(2),
        )
        .unwrap();
        assert_eq!(
            (reply.status, retries),
            (200, 1),
            "429 retried even for POST"
        );
        assert!(
            start.elapsed() >= Duration::from_millis(60),
            "waited at least the ms hint, not the 1s Retry-After"
        );
        h.join().unwrap();
    }

    #[test]
    fn non_idempotent_5xx_is_returned_not_retried() {
        let fail = b"HTTP/1.1 500 Internal Server Error\r\nContent-Length: 4\r\n\r\noops".to_vec();
        let (addr, h) = stub(vec![fail]);
        let (reply, retries) = http_request_retrying(
            &addr,
            "POST",
            "/x",
            Some("body"),
            Duration::from_secs(5),
            &policy(5),
        )
        .unwrap();
        assert_eq!((reply.status, retries), (500, 0));
        h.join().unwrap();
    }

    #[test]
    fn idempotent_5xx_and_budget_exhaustion_return_the_last_reply() {
        let fail = b"HTTP/1.1 503 Service Unavailable\r\nContent-Length: 0\r\n\r\n".to_vec();
        let (addr, h) = stub(vec![fail.clone(), fail.clone(), fail]);
        let (reply, retries) =
            http_request_retrying(&addr, "GET", "/x", None, Duration::from_secs(5), &policy(2))
                .unwrap();
        assert_eq!(
            (reply.status, retries),
            (503, 2),
            "budget spent, reply handed back"
        );
        h.join().unwrap();
    }

    #[test]
    fn connect_refused_exhausts_into_an_error() {
        // Bind then drop: the port is (momentarily) dead.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let err = http_request_retrying(
            &addr,
            "GET",
            "/x",
            None,
            Duration::from_millis(200),
            &policy(2),
        )
        .unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Serve);
    }

    #[test]
    fn backoff_is_deterministic_capped_and_jittered() {
        let p = RetryPolicy {
            retries: 8,
            backoff: Duration::from_millis(100),
            max_backoff: Duration::from_millis(1500),
            seed: 11,
        };
        let delays: Vec<u64> = (0..8).map(|a| p.delay(a).as_millis() as u64).collect();
        assert_eq!(
            delays,
            (0..8)
                .map(|a| p.delay(a).as_millis() as u64)
                .collect::<Vec<_>>(),
            "same seed, same schedule"
        );
        for (a, d) in delays.iter().enumerate() {
            let cap = (100u64 << a).min(1500);
            assert!(
                *d >= cap / 2 && *d <= cap,
                "jitter in [cap/2, cap]: {d} vs {cap}"
            );
        }
        assert!(delays[7] <= 1500, "capped");
        let other = RetryPolicy { seed: 12, ..p };
        assert_ne!(
            delays,
            (0..8)
                .map(|a| other.delay(a).as_millis() as u64)
                .collect::<Vec<_>>(),
            "different seeds decorrelate"
        );
    }

    #[test]
    fn percentile_nearest_rank() {
        let s = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert_eq!(percentile(&s, 50.0), 5.0);
        assert_eq!(percentile(&s, 95.0), 10.0);
        assert_eq!(percentile(&s, 100.0), 10.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[3.0], 99.0), 3.0);
    }
}
