//! SIGINT/SIGTERM handling without a libc crate dependency.
//!
//! std links libc anyway, so the two-argument `signal(2)` entry point
//! is declared directly. The handler only sets an [`AtomicBool`] —
//! async-signal-safe — which the accept loop polls alongside its own
//! stop flag, turning Ctrl-C and `kill` into the same graceful drain
//! as `POST /admin/shutdown`.

use std::sync::atomic::{AtomicBool, Ordering};

static REQUESTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use super::{AtomicBool, Ordering, REQUESTED};

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_signum: i32) {
        REQUESTED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    static INSTALLED: AtomicBool = AtomicBool::new(false);

    pub fn install() {
        if INSTALLED.swap(true, Ordering::SeqCst) {
            return;
        }
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// No-op off Unix: shutdown remains available via the admin route.
    pub fn install() {}
}

/// Installs the SIGINT/SIGTERM → graceful-shutdown handlers (idempotent).
pub fn install() {
    imp::install();
}

/// Whether a termination signal has arrived since [`install`].
pub fn requested() -> bool {
    REQUESTED.load(Ordering::SeqCst)
}

/// Clears the flag (tests only — real shutdown is one-way).
#[doc(hidden)]
pub fn reset_for_tests() {
    REQUESTED.store(false, Ordering::SeqCst);
}
