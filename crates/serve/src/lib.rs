//! `tcor-serve`: a dependency-free result-serving daemon for the TCOR
//! simulator.
//!
//! The ROADMAP's north star is serving-scale: this crate turns the
//! one-shot CLI into a queryable service with the full
//! inference-serving request shape —
//!
//! * **event-driven connections** — a few event threads multiplex
//!   every socket with a `poll(2)` readiness loop: nonblocking
//!   accept, HTTP/1.1 keep-alive reuse, pipelined request batching,
//!   and inline answers for control routes and warm cache hits
//!   (the private `event` module; counters in [`metrics`]);
//! * **admission control** — only cold work crosses a bounded queue
//!   into a fixed compute pool; at capacity, requests are shed with
//!   429 + `Retry-After` ([`pool`]);
//! * **deadlines** — each request carries an accept-time deadline,
//!   checked when its job is dequeued and while awaiting a coalesced
//!   result (504 on expiry), so queue waits cannot pin workers on
//!   work nobody is waiting for;
//! * **coalescing** — identical in-flight requests collapse onto one
//!   computation ([`coalesce`]), TCOR's never-redundant-work thesis
//!   applied to the request plane;
//! * **content-addressed caching** — responses are keyed by the
//!   `fxhash64` of the canonical request ([`router`]) plus the
//!   backend's version hash, and served from the tiered result cache
//!   (`tcor-pcache`: an in-memory session LRU over an optional
//!   persistent disk tier) so warm hits never touch the simulator and
//!   a restarted daemon answers from disk, not cold;
//! * **streaming ingest** — `POST /v1/stream` opens a profiling
//!   session; chunked trace uploads are profiled incrementally
//!   (`tcor-stream`) with exact live OPT/LRU miss-curve snapshots,
//!   per-session budgets (413/429), TTL eviction, and per-session
//!   fault isolation (the private `stream` module);
//! * **graceful shutdown** — `POST /admin/shutdown` or
//!   SIGINT/SIGTERM ([`signal`]) stops admission, drains admitted
//!   work, and exits 0.
//!
//! The crate is simulator-agnostic: the daemon calls a [`Backend`]
//! trait; `tcor-sim serve` supplies the real simulator-backed
//! implementation and the CLI flags.

pub mod client;
pub mod coalesce;
mod event;
pub mod hist;
pub mod http;
pub mod metrics;
pub mod pool;
pub mod router;
pub mod server;
pub mod signal;
mod stream;

pub use client::{
    http_request, http_request_retrying, percentile, request_retrying, HttpClient, HttpReply,
    RetryPolicy,
};
pub use coalesce::{FollowerHandle, Join, LeaderToken, Singleflight, Waited};
pub use hist::LatencyHistogram;
pub use http::{
    parse_request, parse_request_limited, read_request, ParseOutcome, Request, Response, MAX_BODY,
    STREAM_MAX_BODY,
};
pub use metrics::ServeMetrics;
pub use pool::{BoundedQueue, Pushed};
pub use router::{body_limit, route, ApiCall, Route, StreamOp};
pub use server::{start, start_with_cache, ApiBody, Backend, ServeConfig, ServerHandle};
