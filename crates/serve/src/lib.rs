//! `tcor-serve`: a dependency-free result-serving daemon for the TCOR
//! simulator.
//!
//! The ROADMAP's north star is serving-scale: this crate turns the
//! one-shot CLI into a queryable service with the full
//! inference-serving request shape —
//!
//! * **admission control** — a bounded queue feeds a fixed worker
//!   pool; at capacity, requests are shed at the door with 429 +
//!   `Retry-After` ([`pool`]);
//! * **deadlines** — each request carries an accept-time deadline,
//!   checked when its job is dequeued and while awaiting a coalesced
//!   result (504 on expiry), so queue waits cannot pin workers on
//!   work nobody is waiting for;
//! * **coalescing** — identical in-flight requests collapse onto one
//!   computation ([`coalesce`]), TCOR's never-redundant-work thesis
//!   applied to the request plane;
//! * **content-addressed caching** — responses are keyed by the
//!   `fxhash64` of the canonical request ([`router`]) plus the
//!   backend's version hash, and served from the tiered result cache
//!   (`tcor-pcache`: an in-memory session LRU over an optional
//!   persistent disk tier) so warm hits never touch the simulator and
//!   a restarted daemon answers from disk, not cold;
//! * **graceful shutdown** — `POST /admin/shutdown` or
//!   SIGINT/SIGTERM ([`signal`]) stops admission, drains admitted
//!   work, and exits 0.
//!
//! The crate is simulator-agnostic: the daemon calls a [`Backend`]
//! trait; `tcor-sim serve` supplies the real simulator-backed
//! implementation and the CLI flags.

pub mod client;
pub mod coalesce;
pub mod http;
pub mod metrics;
pub mod pool;
pub mod router;
pub mod server;
pub mod signal;

pub use client::{http_request, http_request_retrying, percentile, HttpReply, RetryPolicy};
pub use coalesce::{FollowerHandle, Join, LeaderToken, Singleflight, Waited};
pub use http::{read_request, Request, Response};
pub use metrics::ServeMetrics;
pub use pool::{BoundedQueue, Pushed};
pub use router::{route, ApiCall, Route};
pub use server::{start, start_with_cache, ApiBody, Backend, ServeConfig, ServerHandle};
