//! LRU response cache over content-addressed keys.
//!
//! Layered above the runner's artifact store in the request path: the
//! store memoizes *simulation* artifacts per process, this caches the
//! final *rendered responses* (JSON/CSV strings) so a warm hit never
//! touches the simulator or the encoder at all. Plain LRU is the right
//! policy here — unlike the simulated tile cache there is no future
//! knowledge to exploit on the request stream.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// A fixed-capacity LRU map from content key to shared value.
pub struct LruCache<V> {
    capacity: usize,
    seq: u64,
    /// key → (value, last-touch sequence number).
    map: HashMap<u64, (Arc<V>, u64)>,
    /// last-touch sequence → key; first entry is the LRU victim.
    order: BTreeMap<u64, u64>,
    hits: u64,
    misses: u64,
}

impl<V> LruCache<V> {
    /// A cache holding at most `capacity` responses.
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity: capacity.max(1),
            seq: 0,
            map: HashMap::new(),
            order: BTreeMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    fn touch(&mut self, key: u64, old_seq: u64) -> u64 {
        self.order.remove(&old_seq);
        self.seq += 1;
        self.order.insert(self.seq, key);
        self.seq
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: u64) -> Option<Arc<V>> {
        let Some(&(_, old_seq)) = self.map.get(&key) else {
            self.misses += 1;
            return None;
        };
        let new_seq = self.touch(key, old_seq);
        let entry = self.map.get_mut(&key).expect("present");
        entry.1 = new_seq;
        self.hits += 1;
        Some(Arc::clone(&entry.0))
    }

    /// Inserts (or refreshes) `key`, evicting the least-recently-used
    /// entry if at capacity.
    pub fn insert(&mut self, key: u64, value: Arc<V>) {
        if let Some(&(_, old_seq)) = self.map.get(&key) {
            let new_seq = self.touch(key, old_seq);
            self.map.insert(key, (value, new_seq));
            return;
        }
        if self.map.len() >= self.capacity {
            if let Some((&victim_seq, &victim_key)) = self.order.iter().next() {
                self.order.remove(&victim_seq);
                self.map.remove(&victim_key);
            }
        }
        self.seq += 1;
        self.order.insert(self.seq, key);
        self.map.insert(key, (value, self.seq));
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// `(hits, misses)` since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_refreshes_recency() {
        let mut c: LruCache<&str> = LruCache::new(2);
        c.insert(1, Arc::new("a"));
        c.insert(2, Arc::new("b"));
        assert_eq!(*c.get(1).expect("hit"), "a"); // 1 is now MRU
        c.insert(3, Arc::new("c")); // evicts 2, the LRU
        assert!(c.get(2).is_none());
        assert!(c.get(1).is_some());
        assert!(c.get(3).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_updates_value_without_eviction() {
        let mut c: LruCache<u32> = LruCache::new(2);
        c.insert(1, Arc::new(10));
        c.insert(2, Arc::new(20));
        c.insert(1, Arc::new(11));
        assert_eq!(c.len(), 2);
        assert_eq!(*c.get(1).expect("hit"), 11);
        assert_eq!(*c.get(2).expect("not evicted"), 20);
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let mut c: LruCache<u32> = LruCache::new(1);
        assert!(c.get(1).is_none());
        c.insert(1, Arc::new(1));
        assert!(c.get(1).is_some());
        assert_eq!(c.stats(), (1, 1));
    }
}
