//! Bounded admission queue feeding the worker pool.
//!
//! The queue is the server's only admission-control point: `try_push`
//! never blocks the accept loop — at capacity it reports [`Pushed::Full`]
//! and the caller sheds the request with a 429 instead of queueing
//! unbounded work (the serving-plane analogue of the tile cache's
//! bypass-on-no-reuse decision: work that would only wait past its
//! deadline is cheaper to refuse at the door). Workers block in [`pop`]
//! until an item or until the queue is closed *and* drained, which is
//! exactly the graceful-shutdown contract: close, finish what was
//! admitted, exit.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};

/// Outcome of a non-blocking push. Refusals hand the item back so the
/// caller can answer the connection it failed to enqueue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pushed<T> {
    /// Enqueued; a worker will pick it up.
    Accepted,
    /// At capacity — shed the request (429).
    Full(T),
    /// Queue closed — refuse the request (503).
    ShuttingDown(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A capacity-bounded MPMC queue with explicit close-and-drain.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` items at once.
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Non-blocking admission: enqueue, or hand the item back with the
    /// reason.
    pub fn try_push(&self, item: T) -> Pushed<T> {
        let mut inner = self.lock();
        if inner.closed {
            return Pushed::ShuttingDown(item);
        }
        if inner.items.len() >= self.capacity {
            return Pushed::Full(item);
        }
        inner.items.push_back(item);
        drop(inner);
        self.available.notify_one();
        Pushed::Accepted
    }

    /// Blocks until an item is available (returning it) or the queue is
    /// closed and fully drained (returning `None` — the worker's exit
    /// signal).
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .available
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes the queue: future pushes are refused, workers drain what
    /// was already admitted and then exit.
    pub fn close(&self) {
        self.lock().closed = true;
        self.available.notify_all();
    }

    /// Items currently queued (racy; for metrics only).
    pub fn depth(&self) -> usize {
        self.lock().items.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn admits_to_capacity_then_sheds() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_push(1), Pushed::Accepted);
        assert_eq!(q.try_push(2), Pushed::Accepted);
        assert_eq!(q.try_push(3), Pushed::Full(3));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(3), Pushed::Accepted);
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn close_drains_then_releases_blocked_workers() {
        let q = Arc::new(BoundedQueue::new(4));
        q.try_push(10);
        q.try_push(11);
        q.close();
        assert_eq!(q.try_push(12), Pushed::ShuttingDown(12));
        // Admitted work still drains in order...
        assert_eq!(q.pop(), Some(10));
        assert_eq!(q.pop(), Some(11));
        // ...then workers get their exit signal.
        assert_eq!(q.pop(), None);
        // A worker blocked *before* close is released too.
        let q2 = Arc::new(BoundedQueue::<u32>::new(1));
        let waiter = {
            let q2 = Arc::clone(&q2);
            std::thread::spawn(move || q2.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(10));
        q2.close();
        assert_eq!(waiter.join().unwrap(), None);
    }
}
