//! The streaming profile plane: maps `tcor-stream` sessions onto the
//! daemon's routes, metrics, and fault-isolation discipline.
//!
//! Stream operations are *stateful* (each chunk mutates its session),
//! so unlike the API plane they are never cached, coalesced, or
//! warm-probed — every op crosses the bounded queue to a worker, which
//! calls [`StreamPlane::handle`] under `catch_unwind`. A panic inside
//! an operation evicts the offending session (its state can no longer
//! be trusted) and answers a contained 500; every *expected* failure
//! is a typed [`StreamError`] with its own 4xx status, so a hostile or
//! buggy uploader can never crash the daemon or poison a neighbor's
//! session.

use crate::http::Response;
use crate::metrics::ServeMetrics;
use crate::router::StreamOp;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::time::Instant;
use tcor_stream::{SessionRegistry, StreamConfig, StreamError};

/// The daemon's streaming-session plane.
pub(crate) struct StreamPlane {
    registry: SessionRegistry,
}

impl StreamPlane {
    pub(crate) fn new(config: StreamConfig) -> Self {
        StreamPlane {
            registry: SessionRegistry::new(config),
        }
    }

    /// Executes one streaming operation, translating typed stream
    /// errors to their responses and bumping the plane's counters.
    /// Panics are contained to the op: the session is evicted and the
    /// caller gets a 500 — never a dead worker.
    pub(crate) fn handle(&self, op: &StreamOp, metrics: &ServeMetrics) -> Response {
        let now = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| self.run(op, now, metrics)));
        let response = match outcome {
            Ok(Ok(body)) => Response::json(200, body),
            Ok(Err(e)) => {
                ServeMetrics::bump(&metrics.stream_rejected);
                Response::text(e.status(), format!("{e}\n"))
            }
            Err(_panic) => {
                if let Some(id) = op_session(op) {
                    self.registry.evict(id);
                }
                Response::text(
                    500,
                    "stream operation panicked; session evicted, shard intact\n",
                )
            }
        };
        metrics
            .stream_sessions_open
            .store(self.registry.open_sessions(), Ordering::Relaxed);
        metrics
            .stream_sessions_expired
            .store(self.registry.expired_total(), Ordering::Relaxed);
        response
    }

    fn run(
        &self,
        op: &StreamOp,
        now: Instant,
        metrics: &ServeMetrics,
    ) -> Result<String, StreamError> {
        match op {
            StreamOp::Open { params } => {
                let body = self.registry.open(params, now)?;
                ServeMetrics::bump(&metrics.stream_sessions);
                Ok(body)
            }
            StreamOp::Chunk { id, body } => {
                let receipt = self.registry.chunk(id, body, now)?;
                ServeMetrics::bump(&metrics.stream_chunks);
                metrics
                    .stream_accesses
                    .fetch_add(receipt.accesses, Ordering::Relaxed);
                metrics
                    .stream_bytes
                    .fetch_add(receipt.bytes, Ordering::Relaxed);
                Ok(receipt.body)
            }
            StreamOp::Curve { id, policy } => {
                let body = self.registry.curve(id, policy.as_deref(), now)?;
                ServeMetrics::bump(&metrics.stream_snapshots);
                Ok(body)
            }
            StreamOp::Finish { id, policy } => {
                let body = self.registry.finish(id, policy.as_deref(), now)?;
                ServeMetrics::bump(&metrics.stream_snapshots);
                Ok(body)
            }
        }
    }
}

/// The session an operation addresses, if any.
fn op_session(op: &StreamOp) -> Option<&str> {
    match op {
        StreamOp::Open { .. } => None,
        StreamOp::Chunk { id, .. } | StreamOp::Curve { id, .. } | StreamOp::Finish { id, .. } => {
            Some(id)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_failures_map_to_their_statuses_never_5xx() {
        let plane = StreamPlane::new(StreamConfig::default());
        let metrics = ServeMetrics::new();
        // Unknown session -> 404.
        let r = plane.handle(
            &StreamOp::Chunk {
                id: "nope".into(),
                body: "R1\n".into(),
            },
            &metrics,
        );
        assert_eq!(r.status, 404);
        // Malformed chunk -> 400, session intact.
        let open = plane.handle(
            &StreamOp::Open {
                params: String::new(),
            },
            &metrics,
        );
        assert_eq!(open.status, 200);
        let id = open
            .body
            .split('"')
            .nth(3)
            .expect("session id in receipt")
            .to_string();
        let r = plane.handle(
            &StreamOp::Chunk {
                id: id.clone(),
                body: "garbage!\n".into(),
            },
            &metrics,
        );
        assert_eq!(r.status, 400);
        let r = plane.handle(
            &StreamOp::Chunk {
                id: id.clone(),
                body: "R1\nR2\n".into(),
            },
            &metrics,
        );
        assert_eq!(r.status, 200, "session survived the bad chunk");
        // Finish then chunk -> 409.
        let r = plane.handle(
            &StreamOp::Finish {
                id: id.clone(),
                policy: None,
            },
            &metrics,
        );
        assert_eq!(r.status, 200);
        let r = plane.handle(
            &StreamOp::Chunk {
                id,
                body: "R3\n".into(),
            },
            &metrics,
        );
        assert_eq!(r.status, 409);
        assert_eq!(metrics.stream_rejected.load(Ordering::Relaxed), 3);
        assert_eq!(metrics.stream_sessions_open.load(Ordering::Relaxed), 1);
    }
}
