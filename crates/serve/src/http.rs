//! Minimal HTTP/1.1 framing: blocking reads for clients, incremental
//! buffer parsing for the event loop.
//!
//! Just enough of RFC 9112 for a loopback result service: explicit
//! `Content-Length` bodies, `Connection` negotiation (keep-alive by
//! default on HTTP/1.1, close on HTTP/1.0 or an explicit `close`
//! token), and hard limits on line, header-count and body sizes so a
//! misbehaving peer cannot balloon memory. The server side accumulates
//! bytes into a per-connection buffer and calls [`parse_request`] —
//! which either yields a complete request plus its consumed length
//! (enabling pipelining: the remainder of the buffer is the next
//! request) or reports "incomplete, keep reading". Anything outside
//! the envelope is a typed [`ErrorKind::Serve`](tcor_common::ErrorKind)
//! error, answered with a 400 by the caller.

use std::io::{BufRead, BufReader, Read, Write};
use tcor_common::{TcorError, TcorResult};

/// Longest accepted request/header line, bytes.
const MAX_LINE: usize = 8 * 1024;
/// Most accepted header lines.
const MAX_HEADERS: usize = 64;
/// Largest accepted request body on ordinary routes, bytes.
pub const MAX_BODY: usize = 64 * 1024;
/// Largest accepted request body on streaming-ingest routes, bytes —
/// the one route family that legitimately uploads bulk data.
pub const STREAM_MAX_BODY: usize = 1024 * 1024;
/// Largest accepted header block (start line + headers), bytes — the
/// incremental parser's "stop accumulating" bound for a peer that
/// never sends the blank line.
const MAX_HEAD: usize = 32 * 1024;

/// A parsed request: method, path, headers, body.
#[derive(Clone, Debug)]
pub struct Request {
    /// Uppercase method ("GET", "POST").
    pub method: String,
    /// Request target as sent ("/v1/cell/GTr/base64").
    pub path: String,
    /// Protocol version as sent ("HTTP/1.1"); decides the keep-alive
    /// default.
    pub version: String,
    /// Lowercased header names with their values.
    pub headers: Vec<(String, String)>,
    /// Request body (empty without a `Content-Length`).
    pub body: String,
}

impl Request {
    /// First value of the (case-insensitively named) header.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to keep the connection open after this
    /// request: HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close,
    /// and an explicit `Connection:` header overrides either way. The
    /// header is a comma-separated token list compared
    /// case-insensitively (`Close`, `Keep-Alive, TE` both count).
    pub fn wants_keep_alive(&self) -> bool {
        let mut keep = self.version != "HTTP/1.0";
        if let Some(value) = self.header("connection") {
            for token in value.split(',') {
                let token = token.trim();
                if token.eq_ignore_ascii_case("close") {
                    keep = false;
                } else if token.eq_ignore_ascii_case("keep-alive") {
                    keep = true;
                }
            }
        }
        keep
    }
}

fn read_line<R: BufRead>(r: &mut R) -> TcorResult<String> {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match r.read(&mut byte) {
            Ok(0) => break,
            Ok(_) => {
                if byte[0] == b'\n' {
                    break;
                }
                line.push(byte[0]);
                if line.len() > MAX_LINE {
                    return Err(TcorError::serve(format!(
                        "request line exceeds {MAX_LINE} bytes"
                    )));
                }
            }
            Err(e) => {
                return Err(TcorError::with_source(
                    tcor_common::ErrorKind::Serve,
                    "reading request line",
                    e,
                ))
            }
        }
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| TcorError::serve("request line is not UTF-8"))
}

/// Parses one request line + header block into their parts.
fn parse_head(start: &str, header_lines: &[String]) -> TcorResult<Request> {
    let mut parts = start.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) => (m.to_string(), p.to_string(), v),
        _ => {
            return Err(TcorError::serve(format!(
                "malformed request line `{start}`"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(TcorError::serve(format!("unsupported version `{version}`")));
    }
    let mut headers = Vec::new();
    for line in header_lines {
        if headers.len() == MAX_HEADERS {
            return Err(TcorError::serve(format!("more than {MAX_HEADERS} headers")));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(TcorError::serve(format!("malformed header `{line}`")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok(Request {
        method,
        path,
        version: version.to_string(),
        headers,
        body: String::new(),
    })
}

/// Parses `Content-Length` without enforcing any body limit — limits
/// are per-route, applied by the caller against the parsed head.
fn content_length_raw(headers: &[(String, String)]) -> TcorResult<usize> {
    headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| TcorError::serve(format!("bad content-length `{v}`")))
        })
        .transpose()
        .map(|len| len.unwrap_or(0))
}

fn content_length(headers: &[(String, String)]) -> TcorResult<usize> {
    let len = content_length_raw(headers)?;
    if len > MAX_BODY {
        return Err(TcorError::serve(format!(
            "body of {len} bytes exceeds the {MAX_BODY}-byte limit"
        )));
    }
    Ok(len)
}

/// The incremental parser's verdict on the front of a buffer.
#[derive(Debug)]
pub enum ParseOutcome {
    /// A complete request and the bytes it occupied (the caller drains
    /// them, leaving any pipelined successor in place).
    Complete(Request, usize),
    /// More bytes are needed. Once the head has parsed, `frame` is the
    /// request's total head+body size, so the event loop can admit a
    /// declared-and-allowed large body past its normal buffer cap.
    Incomplete { frame: Option<usize> },
    /// The head parsed cleanly but declares a body over the caller's
    /// per-route limit — answer 413 *now*, before buffering the body.
    BodyTooLarge { declared: usize, limit: usize },
}

/// Incrementally parses the front of an accumulated byte buffer with a
/// per-route body limit: once the head is available, `limit_for`
/// inspects it (method/path/headers) and returns the body size this
/// route accepts. Hostile `Content-Length` values are thus rejected
/// from the head alone — no body bytes are ever buffered for them.
///
/// # Errors
///
/// A serve-class error for a malformed start line or header, an
/// oversized line or header block, or a non-UTF-8 body — the
/// connection is poisoned and the caller answers 400 and closes.
/// An over-limit body is *not* an error (the head framing is intact):
/// it is the [`ParseOutcome::BodyTooLarge`] verdict, answered 413.
pub fn parse_request_limited(
    buf: &[u8],
    limit_for: impl Fn(&Request) -> usize,
) -> TcorResult<ParseOutcome> {
    // Walk the header block line by line until the blank terminator.
    let mut lines: Vec<String> = Vec::new();
    let mut pos = 0usize;
    let body_start = loop {
        let Some(nl) = buf[pos..].iter().position(|&b| b == b'\n') else {
            // No complete line yet: bound both the pending line and
            // the total head so a drip-feeding peer cannot accumulate.
            if buf.len() - pos > MAX_LINE {
                return Err(TcorError::serve(format!(
                    "request line exceeds {MAX_LINE} bytes"
                )));
            }
            if buf.len() > MAX_HEAD {
                return Err(TcorError::serve(format!(
                    "header block exceeds {MAX_HEAD} bytes"
                )));
            }
            return Ok(ParseOutcome::Incomplete { frame: None });
        };
        let mut line = &buf[pos..pos + nl];
        if line.last() == Some(&b'\r') {
            line = &line[..line.len() - 1];
        }
        if line.len() > MAX_LINE {
            return Err(TcorError::serve(format!(
                "request line exceeds {MAX_LINE} bytes"
            )));
        }
        pos += nl + 1;
        if line.is_empty() {
            if lines.is_empty() {
                return Err(TcorError::serve("malformed request line ``"));
            }
            break pos;
        }
        if lines.len() > MAX_HEADERS {
            return Err(TcorError::serve(format!("more than {MAX_HEADERS} headers")));
        }
        lines.push(
            String::from_utf8(line.to_vec())
                .map_err(|_| TcorError::serve("request line is not UTF-8"))?,
        );
        if pos > MAX_HEAD {
            return Err(TcorError::serve(format!(
                "header block exceeds {MAX_HEAD} bytes"
            )));
        }
    };
    let mut request = parse_head(&lines[0], &lines[1..])?;
    let body_len = content_length_raw(&request.headers)?;
    let limit = limit_for(&request);
    if body_len > limit {
        return Ok(ParseOutcome::BodyTooLarge {
            declared: body_len,
            limit,
        });
    }
    let total = body_start + body_len;
    if buf.len() < total {
        return Ok(ParseOutcome::Incomplete { frame: Some(total) });
    }
    request.body = String::from_utf8(buf[body_start..total].to_vec())
        .map_err(|_| TcorError::serve("body is not UTF-8"))?;
    Ok(ParseOutcome::Complete(request, total))
}

/// [`parse_request_limited`] under the flat [`MAX_BODY`] limit, with
/// the legacy `Option` shape: an over-limit body is a serve-class
/// error (connection poisoned) rather than a typed 413.
///
/// # Errors
///
/// Everything [`parse_request_limited`] rejects, plus bodies over
/// [`MAX_BODY`].
pub fn parse_request(buf: &[u8]) -> TcorResult<Option<(Request, usize)>> {
    match parse_request_limited(buf, |_| MAX_BODY)? {
        ParseOutcome::Complete(request, consumed) => Ok(Some((request, consumed))),
        ParseOutcome::Incomplete { .. } => Ok(None),
        ParseOutcome::BodyTooLarge { declared, limit } => Err(TcorError::serve(format!(
            "body of {declared} bytes exceeds the {limit}-byte limit"
        ))),
    }
}

/// Reads and parses one request from `stream` (blocking; client-side
/// and test substrate — the server uses [`parse_request`]).
///
/// # Errors
///
/// Returns a serve-class error for an empty/garbled request line, too
/// many or too long headers, an oversized or short body, or transport
/// failures (including read-timeout expiry).
pub fn read_request<S: Read>(stream: S) -> TcorResult<Request> {
    let mut reader = BufReader::new(stream);
    let start = read_line(&mut reader)?;
    let mut header_lines = Vec::new();
    loop {
        let line = read_line(&mut reader)?;
        if line.is_empty() {
            break;
        }
        if header_lines.len() > MAX_HEADERS {
            return Err(TcorError::serve(format!("more than {MAX_HEADERS} headers")));
        }
        header_lines.push(line);
    }
    let mut request = parse_head(&start, &header_lines)?;
    let body_len = content_length(&request.headers)?;
    let mut body = vec![0u8; body_len];
    reader.read_exact(&mut body).map_err(|e| {
        TcorError::with_source(tcor_common::ErrorKind::Serve, "reading request body", e)
    })?;
    request.body = String::from_utf8(body).map_err(|_| TcorError::serve("body is not UTF-8"))?;
    Ok(request)
}

/// A response ready to serialize. The `Connection:` header follows the
/// negotiated [`keep_alive`](Response::keep_alive) state — constructors
/// default to close, and the event loop flips it per connection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value. Owned: disk-restored cache entries carry
    /// their content type as data, not as a compile-time constant.
    pub content_type: String,
    /// Extra headers (name, value) beyond the always-present ones.
    pub headers: Vec<(&'static str, String)>,
    /// Response body.
    pub body: String,
    /// Whether the connection stays open after this response
    /// (`Connection: keep-alive` vs `close`).
    pub keep_alive: bool,
}

impl Response {
    /// A `text/plain` response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8".to_string(),
            headers: Vec::new(),
            body: body.into(),
            keep_alive: false,
        }
    }

    /// An `application/json` response.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "application/json".to_string(),
            headers: Vec::new(),
            body: body.into(),
            keep_alive: false,
        }
    }

    /// Adds a header, builder-style.
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Self {
        self.headers.push((name, value.into()));
        self
    }

    /// Sets the negotiated connection state, builder-style.
    pub fn with_keep_alive(mut self, keep_alive: bool) -> Self {
        self.keep_alive = keep_alive;
        self
    }

    /// The standard reason phrase for the codes this server emits.
    pub fn reason(status: u16) -> &'static str {
        match status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            409 => "Conflict",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            504 => "Gateway Timeout",
            _ => "Unknown",
        }
    }

    /// The fully serialized response (status line, headers, the
    /// negotiated `Connection:` header, body) — the exact bytes
    /// [`write_to`] sends. Exposed so the serve-plane fault layer can
    /// truncate or corrupt a response *after* serialization, the way a
    /// failing network would.
    ///
    /// [`write_to`]: Response::write_to
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            Self::reason(self.status),
            self.content_type,
            self.body.len(),
            if self.keep_alive {
                "keep-alive"
            } else {
                "close"
            },
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        let mut bytes = head.into_bytes();
        bytes.extend_from_slice(self.body.as_bytes());
        bytes
    }

    /// Serializes the response onto `w`.
    ///
    /// # Errors
    ///
    /// Propagates transport errors as serve-class errors.
    pub fn write_to<W: Write>(&self, mut w: W) -> TcorResult<()> {
        w.write_all(&self.to_bytes())
            .and_then(|()| w.flush())
            .map_err(|e| {
                TcorError::with_source(tcor_common::ErrorKind::Serve, "writing response", e)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_get_with_headers() {
        let raw = "GET /health HTTP/1.1\r\nHost: localhost\r\nX-Probe: 1\r\n\r\n";
        let req = read_request(raw.as_bytes()).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/health");
        assert_eq!(req.version, "HTTP/1.1");
        assert_eq!(req.header("host"), Some("localhost"));
        assert_eq!(req.header("X-Probe"), Some("1"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_a_post_body_by_content_length() {
        let raw = "POST /v1/run HTTP/1.1\r\nContent-Length: 14\r\n\r\nexperiment=fig10";
        let req = read_request(raw.as_bytes()).unwrap();
        assert_eq!(req.body, "experiment=fig"); // exactly 14 bytes
    }

    #[test]
    fn rejects_garbage_and_oversize() {
        assert!(read_request("\r\n\r\n".as_bytes()).is_err());
        assert!(read_request("GET /x SPDY/9\r\n\r\n".as_bytes()).is_err());
        let huge = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        let err = read_request(huge.as_bytes()).unwrap_err();
        assert_eq!(err.kind(), tcor_common::ErrorKind::Serve);
    }

    #[test]
    fn incremental_parse_waits_for_completion_then_consumes_exactly() {
        let raw = b"POST /v1/run HTTP/1.1\r\nContent-Length: 5\r\n\r\nhelloGET /next";
        let (req, consumed) = parse_request(raw).unwrap().expect("complete");
        // Every proper prefix short of head+body is "keep reading".
        for cut in 0..consumed {
            assert!(
                parse_request(&raw[..cut]).unwrap().is_none(),
                "cut at {cut} must be incomplete"
            );
        }
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, "hello");
        assert_eq!(&raw[consumed..], b"GET /next", "pipelined tail preserved");
    }

    #[test]
    fn incremental_parse_rejects_what_read_request_rejects() {
        assert!(parse_request(b"\r\n\r\n").is_err());
        assert!(parse_request(b"GET /x SPDY/9\r\n\r\n").is_err());
        assert!(parse_request(b"no colon header\r\nGET / HTTP/1.1\r\n\r\n").is_err());
        let huge = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert!(parse_request(huge.as_bytes()).is_err());
        // A never-terminating header block errors instead of buffering.
        let drip = vec![b'a'; MAX_HEAD + 2];
        assert!(parse_request(&drip).is_err());
    }

    #[test]
    fn per_route_limit_verdicts_from_the_head_alone() {
        // The head alone (no body bytes at all) is enough for a 413
        // verdict — nothing is buffered for a hostile Content-Length.
        let head = format!(
            "POST /v1/stream/s0/chunk HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        match parse_request_limited(head.as_bytes(), |_| MAX_BODY).unwrap() {
            ParseOutcome::BodyTooLarge { declared, limit } => {
                assert_eq!(declared, MAX_BODY + 1);
                assert_eq!(limit, MAX_BODY);
            }
            other => panic!("expected BodyTooLarge, got {other:?}"),
        }
        // A route-specific larger limit admits the same head.
        match parse_request_limited(head.as_bytes(), |r| {
            if r.path.starts_with("/v1/stream/") {
                STREAM_MAX_BODY
            } else {
                MAX_BODY
            }
        })
        .unwrap()
        {
            ParseOutcome::Incomplete { frame: Some(total) } => {
                assert_eq!(total, head.len() + MAX_BODY + 1, "frame spans head+body");
            }
            other => panic!("expected Incomplete with frame, got {other:?}"),
        }
        // Before the head completes there is no frame size yet.
        match parse_request_limited(b"POST /x HTTP/1.1\r\n", |_| MAX_BODY).unwrap() {
            ParseOutcome::Incomplete { frame: None } => {}
            other => panic!("expected headless Incomplete, got {other:?}"),
        }
    }

    #[test]
    fn reason_covers_streaming_statuses() {
        assert_eq!(Response::reason(409), "Conflict");
        assert_eq!(Response::reason(413), "Payload Too Large");
    }

    #[test]
    fn connection_token_negotiation() {
        let parse = |raw: &str| parse_request(raw.as_bytes()).unwrap().unwrap().0;
        // HTTP/1.1 defaults to keep-alive; HTTP/1.0 to close.
        assert!(parse("GET / HTTP/1.1\r\n\r\n").wants_keep_alive());
        assert!(!parse("GET / HTTP/1.0\r\n\r\n").wants_keep_alive());
        // Explicit tokens override the default, case-insensitively.
        assert!(!parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").wants_keep_alive());
        assert!(!parse("GET / HTTP/1.1\r\nConnection: CLOSE\r\n\r\n").wants_keep_alive());
        assert!(parse("GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n").wants_keep_alive());
        // Token lists: any `close` wins over other tokens.
        assert!(!parse("GET / HTTP/1.1\r\nConnection: TE, close\r\n\r\n").wants_keep_alive());
        assert!(parse("GET / HTTP/1.0\r\nConnection: keep-alive, TE\r\n\r\n").wants_keep_alive());
        // Unknown tokens leave the version default in place.
        assert!(parse("GET / HTTP/1.1\r\nConnection: upgrade\r\n\r\n").wants_keep_alive());
    }

    #[test]
    fn response_serializes_with_close_and_length() {
        let mut buf = Vec::new();
        Response::text(200, "ok\n")
            .with_header("X-Tcor-Cache", "hit")
            .write_to(&mut buf)
            .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 3\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("X-Tcor-Cache: hit\r\n"));
        assert!(text.ends_with("\r\n\r\nok\n"));
    }

    #[test]
    fn response_serializes_keep_alive_when_negotiated() {
        let bytes = Response::text(200, "ok\n").with_keep_alive(true).to_bytes();
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(!text.contains("Connection: close\r\n"));
    }
}
