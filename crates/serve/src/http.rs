//! Minimal HTTP/1.1 framing over blocking streams.
//!
//! Just enough of RFC 9112 for a loopback result service: one request
//! per connection (`Connection: close` on every response), explicit
//! `Content-Length` bodies, hard limits on line, header-count and body
//! sizes so a misbehaving peer cannot balloon memory. Anything outside
//! that envelope is a typed [`ErrorKind::Serve`](tcor_common::ErrorKind)
//! error, answered with a 400 by the caller.

use std::io::{BufRead, BufReader, Read, Write};
use tcor_common::{TcorError, TcorResult};

/// Longest accepted request/header line, bytes.
const MAX_LINE: usize = 8 * 1024;
/// Most accepted header lines.
const MAX_HEADERS: usize = 64;
/// Largest accepted request body, bytes.
const MAX_BODY: usize = 64 * 1024;

/// A parsed request: method, path, headers, body.
#[derive(Clone, Debug)]
pub struct Request {
    /// Uppercase method ("GET", "POST").
    pub method: String,
    /// Request target as sent ("/v1/cell/GTr/base64").
    pub path: String,
    /// Lowercased header names with their values.
    pub headers: Vec<(String, String)>,
    /// Request body (empty without a `Content-Length`).
    pub body: String,
}

impl Request {
    /// First value of the (case-insensitively named) header.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

fn read_line<R: BufRead>(r: &mut R) -> TcorResult<String> {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match r.read(&mut byte) {
            Ok(0) => break,
            Ok(_) => {
                if byte[0] == b'\n' {
                    break;
                }
                line.push(byte[0]);
                if line.len() > MAX_LINE {
                    return Err(TcorError::serve(format!(
                        "request line exceeds {MAX_LINE} bytes"
                    )));
                }
            }
            Err(e) => {
                return Err(TcorError::with_source(
                    tcor_common::ErrorKind::Serve,
                    "reading request line",
                    e,
                ))
            }
        }
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| TcorError::serve("request line is not UTF-8"))
}

/// Reads and parses one request from `stream`.
///
/// # Errors
///
/// Returns a serve-class error for an empty/garbled request line, too
/// many or too long headers, an oversized or short body, or transport
/// failures (including read-timeout expiry).
pub fn read_request<S: Read>(stream: S) -> TcorResult<Request> {
    let mut reader = BufReader::new(stream);
    let start = read_line(&mut reader)?;
    let mut parts = start.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) => (m.to_string(), p.to_string(), v),
        _ => {
            return Err(TcorError::serve(format!(
                "malformed request line `{start}`"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(TcorError::serve(format!("unsupported version `{version}`")));
    }
    let mut headers = Vec::new();
    loop {
        let line = read_line(&mut reader)?;
        if line.is_empty() {
            break;
        }
        if headers.len() == MAX_HEADERS {
            return Err(TcorError::serve(format!("more than {MAX_HEADERS} headers")));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(TcorError::serve(format!("malformed header `{line}`")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| TcorError::serve(format!("bad content-length `{v}`")))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY {
        return Err(TcorError::serve(format!(
            "body of {content_length} bytes exceeds the {MAX_BODY}-byte limit"
        )));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|e| {
        TcorError::with_source(tcor_common::ErrorKind::Serve, "reading request body", e)
    })?;
    let body = String::from_utf8(body).map_err(|_| TcorError::serve("body is not UTF-8"))?;
    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

/// A response ready to serialize. Every response closes its connection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value. Owned: disk-restored cache entries carry
    /// their content type as data, not as a compile-time constant.
    pub content_type: String,
    /// Extra headers (name, value) beyond the always-present ones.
    pub headers: Vec<(&'static str, String)>,
    /// Response body.
    pub body: String,
}

impl Response {
    /// A `text/plain` response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8".to_string(),
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// An `application/json` response.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "application/json".to_string(),
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// Adds a header, builder-style.
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Self {
        self.headers.push((name, value.into()));
        self
    }

    /// The standard reason phrase for the codes this server emits.
    pub fn reason(status: u16) -> &'static str {
        match status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            504 => "Gateway Timeout",
            _ => "Unknown",
        }
    }

    /// The fully serialized response (status line, headers,
    /// `Connection: close`, body) — the exact bytes [`write_to`]
    /// sends. Exposed so the serve-plane fault layer can truncate or
    /// corrupt a response *after* serialization, the way a failing
    /// network would.
    ///
    /// [`write_to`]: Response::write_to
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            Self::reason(self.status),
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        let mut bytes = head.into_bytes();
        bytes.extend_from_slice(self.body.as_bytes());
        bytes
    }

    /// Serializes the response onto `w`.
    ///
    /// # Errors
    ///
    /// Propagates transport errors as serve-class errors.
    pub fn write_to<W: Write>(&self, mut w: W) -> TcorResult<()> {
        w.write_all(&self.to_bytes())
            .and_then(|()| w.flush())
            .map_err(|e| {
                TcorError::with_source(tcor_common::ErrorKind::Serve, "writing response", e)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_get_with_headers() {
        let raw = "GET /health HTTP/1.1\r\nHost: localhost\r\nX-Probe: 1\r\n\r\n";
        let req = read_request(raw.as_bytes()).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/health");
        assert_eq!(req.header("host"), Some("localhost"));
        assert_eq!(req.header("X-Probe"), Some("1"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_a_post_body_by_content_length() {
        let raw = "POST /v1/run HTTP/1.1\r\nContent-Length: 14\r\n\r\nexperiment=fig10";
        let req = read_request(raw.as_bytes()).unwrap();
        assert_eq!(req.body, "experiment=fig"); // exactly 14 bytes
    }

    #[test]
    fn rejects_garbage_and_oversize() {
        assert!(read_request("\r\n\r\n".as_bytes()).is_err());
        assert!(read_request("GET /x SPDY/9\r\n\r\n".as_bytes()).is_err());
        let huge = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        let err = read_request(huge.as_bytes()).unwrap_err();
        assert_eq!(err.kind(), tcor_common::ErrorKind::Serve);
    }

    #[test]
    fn response_serializes_with_close_and_length() {
        let mut buf = Vec::new();
        Response::text(200, "ok\n")
            .with_header("X-Tcor-Cache", "hit")
            .write_to(&mut buf)
            .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 3\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("X-Tcor-Cache: hit\r\n"));
        assert!(text.ends_with("\r\n\r\nok\n"));
    }
}
