//! The event-driven connection plane: a few threads, thousands of
//! sockets.
//!
//! Each event thread owns a set of `set_nonblocking` connections and
//! drives a per-connection state machine — read-accumulate →
//! [`parse_request`] → dispatch → write-drain — around a `poll(2)`
//! readiness wait (declared directly, like [`crate::signal`]: std
//! links libc anyway). Thread 0 additionally owns the nonblocking
//! listener and deals accepted connections round-robin across the
//! event threads.
//!
//! The split of work is the point of the design:
//!
//! * **Answered inline on the event thread** (never queued): control
//!   routes (`/health`, `/metrics`, shutdown), routing errors, warm
//!   cache hits, and 429/503 refusals. A warm hit is a hash-map probe
//!   plus two syscalls, so its latency is bounded by syscall cost, not
//!   by queue depth or worker count.
//! * **Handed to the compute pool**: cache misses, as [`ComputeJob`]s
//!   through the same [`BoundedQueue`](crate::pool::BoundedQueue)
//!   admission point as before — singleflight coalescing, the
//!   dequeue-time deadline check, and 429 shedding keep their
//!   semantics; the completion rides back to the owning event thread
//!   through its [`EventInbox`] and a self-pipe wake.
//!
//! Keep-alive and pipelining: a connection's buffer may hold several
//! requests; they dispatch strictly in order (the next one only after
//! the previous response is enqueued), which makes pipelined responses
//! naturally in-order. `Connection: close` (or HTTP/1.0) drains the
//! response then closes.
//!
//! A stuck peer cannot pin an event thread: a partial request times
//! out against the per-request deadline (408), an unread response
//! against a write-stall bound, and an idle keep-alive connection
//! against an idle bound — all enforced by a sweep whose next due time
//! feeds the poll timeout, so an idle daemon wakes ~2 times a second
//! instead of the old accept loop's ~2000 no-op polls.

use crate::http::{parse_request_limited, ParseOutcome, Request, Response};
use crate::metrics::ServeMetrics;
use crate::pool::Pushed;
use crate::router::{body_limit, route, Route};
use crate::server::{finish_api, wire_bytes, ComputeJob, Shared, Work};
use crate::signal;
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};
use tcor_common::{fault, TcorError, TcorResult};

/// Poll timeout while idle (stop-flag and signal responsiveness).
const IDLE_POLL: Duration = Duration::from_millis(500);
/// Poll timeout while draining for shutdown.
const DRAIN_POLL: Duration = Duration::from_millis(25);
/// A connection whose peer stops reading our response is closed after
/// this long without write progress (it cannot pin buffer memory).
const WRITE_STALL_TIMEOUT: Duration = Duration::from_secs(10);
/// An idle keep-alive connection is closed after this long.
const IDLE_TIMEOUT: Duration = Duration::from_secs(60);
/// Most unparsed bytes buffered per connection before reads pause
/// (pipelining backpressure).
const MAX_CONN_BUF: usize = 256 * 1024;
/// Read chunk size.
const READ_CHUNK: usize = 16 * 1024;

#[cfg(unix)]
mod sys {
    //! `poll(2)`, declared directly (std links libc; same precedent as
    //! [`crate::signal`]).
    use std::os::raw::{c_int, c_ulong};
    use std::time::Duration;

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }

    /// Readiness wait: blocks until a descriptor is ready or `timeout`
    /// passes. EINTR (a signal arrived) reports as 0 ready — callers
    /// re-check their stop conditions every iteration anyway.
    pub fn wait(fds: &mut [PollFd], timeout: Duration) -> usize {
        let mut ms = timeout.as_millis().min(i32::MAX as u128) as i32;
        if ms == 0 && timeout > Duration::ZERO {
            ms = 1;
        }
        let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, ms) };
        n.max(0) as usize
    }
}

#[cfg(not(unix))]
mod sys {
    //! Portability fallback without a readiness syscall: report every
    //! descriptor ready after a short sleep. Nonblocking I/O turns
    //! that into a bounded busy-poll — correct, just not cheap; the
    //! deployment targets are all Unix.
    use std::time::Duration;

    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    pub fn wait(fds: &mut [PollFd], timeout: Duration) -> usize {
        std::thread::sleep(timeout.min(Duration::from_millis(2)));
        for fd in fds.iter_mut() {
            fd.revents = fd.events;
        }
        fds.len()
    }
}

#[cfg(unix)]
fn fd_of<T: std::os::unix::io::AsRawFd>(t: &T) -> i32 {
    t.as_raw_fd()
}

#[cfg(not(unix))]
fn fd_of<T>(_t: &T) -> i32 {
    0
}

/// The wake-pipe read end an event thread polls.
#[cfg(unix)]
pub(crate) type WakeRx = std::os::unix::net::UnixStream;
#[cfg(not(unix))]
pub(crate) type WakeRx = ();

/// A finished compute job riding back to the event thread that owns
/// its connection.
pub(crate) struct Completion {
    /// Connection id the response belongs to.
    pub conn: u64,
    /// The response to serialize (already accounted by `finish_api`).
    pub response: Response,
}

/// One event thread's mailbox: completions from the compute pool,
/// connection hand-offs from the accepting thread, and the wake pipe
/// that interrupts its poll.
pub(crate) struct EventInbox {
    completions: Mutex<VecDeque<Completion>>,
    handoffs: Mutex<Vec<TcpStream>>,
    #[cfg(unix)]
    wake_tx: std::os::unix::net::UnixStream,
}

impl EventInbox {
    /// Builds the inbox plus the wake-pipe read end its event thread
    /// will poll.
    ///
    /// # Errors
    ///
    /// A serve-class error if the self-pipe cannot be created.
    pub(crate) fn new() -> TcorResult<(Arc<EventInbox>, WakeRx)> {
        #[cfg(unix)]
        {
            let (tx, rx) = std::os::unix::net::UnixStream::pair().map_err(|e| {
                TcorError::with_source(tcor_common::ErrorKind::Serve, "creating wake pipe", e)
            })?;
            tx.set_nonblocking(true)
                .and_then(|()| rx.set_nonblocking(true))
                .map_err(|e| {
                    TcorError::with_source(
                        tcor_common::ErrorKind::Serve,
                        "configuring wake pipe",
                        e,
                    )
                })?;
            Ok((
                Arc::new(EventInbox {
                    completions: Mutex::new(VecDeque::new()),
                    handoffs: Mutex::new(Vec::new()),
                    wake_tx: tx,
                }),
                rx,
            ))
        }
        #[cfg(not(unix))]
        {
            Ok((
                Arc::new(EventInbox {
                    completions: Mutex::new(VecDeque::new()),
                    handoffs: Mutex::new(Vec::new()),
                }),
                (),
            ))
        }
    }

    /// Interrupts the owning thread's poll. Best-effort: a full pipe
    /// means a wake is already pending, which is all we need.
    pub(crate) fn notify(&self) {
        #[cfg(unix)]
        {
            let _ = (&self.wake_tx).write(&[1u8]);
        }
    }

    /// Delivers a finished compute job (called from pool workers).
    pub(crate) fn complete(&self, completion: Completion) {
        self.completions
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_back(completion);
        self.notify();
    }

    /// Hands an accepted connection to this thread (called from the
    /// accepting event thread).
    fn hand_off(&self, stream: TcpStream) {
        self.handoffs
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(stream);
        self.notify();
    }

    fn take_completions(&self) -> VecDeque<Completion> {
        std::mem::take(
            &mut self
                .completions
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        )
    }

    fn take_handoffs(&self) -> Vec<TcpStream> {
        std::mem::take(&mut self.handoffs.lock().unwrap_or_else(PoisonError::into_inner))
    }
}

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    /// Unparsed request bytes.
    buf: Vec<u8>,
    /// Serialized responses awaiting the socket.
    out: Vec<u8>,
    out_pos: usize,
    /// Parsed requests not yet dispatched (pipelining).
    pending: VecDeque<(Request, Instant)>,
    /// A compute job for this connection is in the pool.
    inflight: bool,
    /// Keep-alive state negotiated by the most recently dispatched
    /// request.
    keep_alive: bool,
    /// Stop reading; close once responses drain and nothing is inflight.
    close_after_drain: bool,
    /// `serve/drop_conn` fired: hard-sever after the truncated write.
    severed: bool,
    /// Peer sent FIN; requests already buffered still get answers.
    peer_closed: bool,
    /// When the first byte of the currently-incomplete request arrived
    /// (slowloris clock; cleared when the request parses).
    partial_since: Option<Instant>,
    /// `serve/stall_read` fired: don't parse new bytes until then.
    stall_until: Option<Instant>,
    /// Head+body size of the in-progress request once its head has
    /// parsed and its declared body passed the per-route limit — the
    /// read cap is raised to this so an *allowed* large body (stream
    /// ingest) can finish arriving; hostile sizes were already 413'd.
    frame_total: Option<usize>,
    last_activity: Instant,
    /// Requests parsed on this connection (≥ 2 ⇒ keep-alive reuse).
    served: u64,
    /// Marked for removal at the next reap.
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Conn {
            stream,
            buf: Vec::new(),
            out: Vec::new(),
            out_pos: 0,
            pending: VecDeque::new(),
            inflight: false,
            keep_alive: true,
            close_after_drain: false,
            severed: false,
            peer_closed: false,
            partial_since: None,
            stall_until: None,
            frame_total: None,
            last_activity: Instant::now(),
            served: 0,
            dead: false,
        }
    }

    fn has_output(&self) -> bool {
        self.out_pos < self.out.len()
    }

    /// Read cap: the pipelining backpressure bound, raised to the
    /// in-progress request's admitted frame size when that is larger.
    fn read_cap(&self) -> usize {
        MAX_CONN_BUF.max(self.frame_total.unwrap_or(0))
    }

    fn wants_read(&self, stopping: bool) -> bool {
        !stopping
            && !self.dead
            && !self.close_after_drain
            && !self.peer_closed
            && self.stall_until.is_none()
            && self.buf.len() < self.read_cap()
    }

    /// Nothing left to do for this connection: safe to close.
    fn finished(&self) -> bool {
        !self.inflight && self.pending.is_empty() && !self.has_output()
    }
}

enum Tag {
    Wake,
    Listener,
    Conn(u64),
}

/// One event thread. `listener` is `Some` only on thread 0.
pub(crate) fn event_loop(
    id: usize,
    shared: Arc<Shared>,
    inbox: Arc<EventInbox>,
    rx: WakeRx,
    listener: Option<TcpListener>,
) {
    EventLoop {
        id,
        shared,
        inbox,
        rx,
        listener,
        conns: HashMap::new(),
        next_conn: 0,
        rr: 0,
        announced_stop: false,
    }
    .run();
}

struct EventLoop {
    id: usize,
    shared: Arc<Shared>,
    inbox: Arc<EventInbox>,
    #[allow(dead_code)] // read on unix only
    rx: WakeRx,
    listener: Option<TcpListener>,
    conns: HashMap<u64, Conn>,
    next_conn: u64,
    rr: u64,
    announced_stop: bool,
}

impl EventLoop {
    fn run(mut self) {
        let mut fds: Vec<sys::PollFd> = Vec::new();
        let mut tags: Vec<Tag> = Vec::new();
        loop {
            let stopping = self.shared.stop.load(Ordering::SeqCst) || signal::requested();
            if stopping {
                self.begin_drain();
            }
            for stream in self.inbox.take_handoffs() {
                if stopping {
                    drop(stream); // arrived after stop: refused at the door
                } else {
                    self.register(stream);
                }
            }
            for completion in self.inbox.take_completions() {
                self.on_completion(completion);
            }
            self.sweep(Instant::now());
            self.reap();
            if stopping && self.conns.is_empty() {
                break;
            }

            fds.clear();
            tags.clear();
            #[cfg(unix)]
            {
                fds.push(sys::PollFd {
                    fd: fd_of(&self.rx),
                    events: sys::POLLIN,
                    revents: 0,
                });
                tags.push(Tag::Wake);
            }
            if let Some(listener) = &self.listener {
                fds.push(sys::PollFd {
                    fd: fd_of(listener),
                    events: sys::POLLIN,
                    revents: 0,
                });
                tags.push(Tag::Listener);
            }
            for (&id, conn) in &self.conns {
                let mut events = 0i16;
                if conn.wants_read(stopping) {
                    events |= sys::POLLIN;
                }
                if conn.has_output() {
                    events |= sys::POLLOUT;
                }
                if events != 0 {
                    fds.push(sys::PollFd {
                        fd: fd_of(&conn.stream),
                        events,
                        revents: 0,
                    });
                    tags.push(Tag::Conn(id));
                }
            }
            let timeout = self.next_timeout(stopping);
            sys::wait(&mut fds, timeout);
            ServeMetrics::bump(&self.shared.metrics.eventloop_wakeups);
            for (fd, tag) in fds.iter().zip(&tags) {
                if fd.revents == 0 {
                    continue;
                }
                match tag {
                    Tag::Wake => self.drain_wake(),
                    Tag::Listener => self.accept_ready(),
                    Tag::Conn(id) => self.conn_ready(*id, fd.revents),
                }
            }
            self.reap();
        }
    }

    /// First observation of the stop flag: stop accepting, mark every
    /// connection close-after-drain, and wake the sibling threads so
    /// they notice without waiting out their poll timeout.
    fn begin_drain(&mut self) {
        self.listener = None;
        for conn in self.conns.values_mut() {
            conn.close_after_drain = true;
        }
        if !self.announced_stop {
            self.announced_stop = true;
            for inbox in &self.shared.inboxes {
                inbox.notify();
            }
        }
    }

    fn drain_wake(&mut self) {
        #[cfg(unix)]
        {
            let mut tmp = [0u8; 256];
            loop {
                match (&self.rx).read(&mut tmp) {
                    Ok(0) => break,
                    Ok(_) => continue,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => break,
                }
            }
        }
    }

    fn register(&mut self, stream: TcpStream) {
        let _ = stream.set_nonblocking(true);
        let _ = stream.set_nodelay(true);
        let id = (self.id as u64) << 48 | self.next_conn;
        self.next_conn += 1;
        self.conns.insert(id, Conn::new(stream));
        ServeMetrics::bump(&self.shared.metrics.conns_accepted);
        ServeMetrics::bump(&self.shared.metrics.conns_open);
        // The client's request may already be in the socket buffer.
        self.readable(id);
    }

    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    let n = self.shared.inboxes.len().max(1);
                    let target = (self.rr as usize) % n;
                    self.rr += 1;
                    if target == self.id {
                        self.register(stream);
                    } else {
                        self.shared.inboxes[target].hand_off(stream);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    fn conn_ready(&mut self, id: u64, revents: i16) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        if revents & (sys::POLLERR | sys::POLLNVAL) != 0 {
            conn.dead = true;
            return;
        }
        if revents & (sys::POLLIN | sys::POLLHUP) != 0 {
            self.readable(id);
        }
        if revents & sys::POLLOUT != 0 {
            self.writable(id);
        }
    }

    fn readable(&mut self, id: u64) {
        let now = Instant::now();
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        if conn.dead || conn.close_after_drain {
            return;
        }
        let mut tmp = [0u8; READ_CHUNK];
        let mut read_any = false;
        loop {
            if conn.buf.len() >= conn.read_cap() {
                break;
            }
            match conn.stream.read(&mut tmp) {
                Ok(0) => {
                    conn.peer_closed = true;
                    break;
                }
                Ok(n) => {
                    conn.buf.extend_from_slice(&tmp[..n]);
                    read_any = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    return;
                }
            }
        }
        if read_any {
            conn.last_activity = now;
            if conn.partial_since.is_none() && !conn.buf.is_empty() {
                conn.partial_since = Some(now);
                // Chaos: a stalled read — the bytes sit unparsed, as
                // if the peer (or kernel) had stopped delivering them.
                if let Some(ms) = fault::fire("serve/stall_read") {
                    conn.stall_until = Some(now + Duration::from_millis(ms));
                }
            }
        }
        if conn.stall_until.is_none() {
            self.parse_ready(id);
        }
        if let Some(conn) = self.conns.get_mut(&id) {
            if conn.peer_closed && conn.finished() {
                conn.dead = true;
            }
        }
    }

    /// Parses every complete request at the front of the buffer into
    /// the pending queue, then pumps the dispatch state machine.
    fn parse_ready(&mut self, id: u64) {
        let mut parsed = 0u32;
        loop {
            let Some(conn) = self.conns.get_mut(&id) else {
                return;
            };
            if conn.dead || conn.close_after_drain {
                break;
            }
            match parse_request_limited(&conn.buf, |req| body_limit(&req.method, &req.path)) {
                Ok(ParseOutcome::Complete(request, consumed)) => {
                    conn.buf.drain(..consumed);
                    conn.frame_total = None;
                    let arrived = conn.partial_since.take().unwrap_or_else(Instant::now);
                    if !conn.buf.is_empty() {
                        conn.partial_since = Some(Instant::now());
                    }
                    conn.served += 1;
                    if conn.served > 1 {
                        ServeMetrics::bump(&self.shared.metrics.keepalive_reuses);
                    }
                    conn.pending.push_back((request, arrived));
                    parsed += 1;
                }
                Ok(ParseOutcome::Incomplete { frame }) => {
                    conn.frame_total = frame;
                    break;
                }
                Ok(ParseOutcome::BodyTooLarge { declared, limit }) => {
                    // The head alone convicted the request: answer 413
                    // and close without ever buffering the body.
                    ServeMetrics::bump(&self.shared.metrics.body_rejected);
                    conn.keep_alive = false;
                    conn.buf.clear();
                    conn.partial_since = None;
                    conn.frame_total = None;
                    conn.pending.clear();
                    conn.close_after_drain = true;
                    self.enqueue_response(
                        id,
                        Response::text(
                            413,
                            format!(
                                "declared body of {declared} bytes exceeds the \
                                 {limit}-byte limit for this route\n"
                            ),
                        ),
                    );
                    break;
                }
                Err(e) => {
                    // Framing is poisoned: answer 400 and close.
                    // (`close_after_drain` is set before the enqueue
                    // so the synchronous drain inside it already sees
                    // a finished connection and closes it.)
                    conn.keep_alive = false;
                    conn.buf.clear();
                    conn.partial_since = None;
                    conn.frame_total = None;
                    conn.pending.clear();
                    conn.close_after_drain = true;
                    self.enqueue_response(id, Response::text(400, format!("{e}\n")));
                    break;
                }
            }
        }
        if parsed >= 2 {
            ServeMetrics::bump(&self.shared.metrics.pipelined_batches);
        }
        if parsed > 0 {
            self.pump(id);
        }
    }

    /// Dispatches pending requests in order. Stops at the first one
    /// that goes to the compute pool (responses must stay in request
    /// order) and resumes when its completion arrives.
    fn pump(&mut self, id: u64) {
        loop {
            let Some(conn) = self.conns.get_mut(&id) else {
                return;
            };
            if conn.dead || conn.inflight {
                return;
            }
            if conn.close_after_drain {
                // `Connection: close` (or shutdown drain): anything
                // still pending was never admitted and is dropped.
                conn.pending.clear();
                return;
            }
            let Some((request, arrived)) = conn.pending.pop_front() else {
                return;
            };
            conn.keep_alive = request.wants_keep_alive();
            let close_after = !conn.keep_alive;
            if close_after {
                conn.close_after_drain = true;
            }
            match self.dispatch(id, &request, arrived) {
                Some(response) => self.enqueue_response(id, response),
                None => {
                    if let Some(conn) = self.conns.get_mut(&id) {
                        conn.inflight = true;
                    }
                    return;
                }
            }
        }
    }

    /// Routes one request: `Some(response)` to answer inline, `None`
    /// when a compute job was queued for it.
    fn dispatch(&mut self, id: u64, request: &Request, arrived: Instant) -> Option<Response> {
        let shared = Arc::clone(&self.shared);
        match route(request) {
            Err(response) => Some(response),
            Ok(Route::Health) => Some(if shared.cache.degraded() {
                Response::text(200, "degraded\n")
            } else {
                Response::text(200, "ok\n")
            }),
            Ok(Route::Metrics) => Some(Response::text(200, shared.metrics_text())),
            Ok(Route::Shutdown) => {
                shared.stop.store(true, Ordering::SeqCst);
                for inbox in &shared.inboxes {
                    inbox.notify();
                }
                if let Some(conn) = self.conns.get_mut(&id) {
                    conn.keep_alive = false;
                    conn.close_after_drain = true;
                }
                Some(Response::text(200, "shutting down\n"))
            }
            Ok(Route::Api(call)) => {
                // Warm probe inline: a cache hit never touches the
                // queue, so its latency is two syscalls + a map probe.
                if let Some((response, source)) = shared.try_warm(&call) {
                    shared.note_received(&call);
                    finish_api(
                        &shared,
                        self.id as u64,
                        &request.path,
                        arrived,
                        &response,
                        source,
                    );
                    return Some(response);
                }
                let endpoint = call.endpoint();
                let canonical = call.canonical();
                let job = ComputeJob {
                    thread: self.id,
                    conn: id,
                    work: Work::Api(call),
                    path: request.path.clone(),
                    arrived,
                };
                match shared.queue.try_push(job) {
                    Pushed::Accepted => {
                        shared.note_received_parts(endpoint, &canonical);
                        None
                    }
                    Pushed::Full(_) => Some(shared.shed_response()),
                    Pushed::ShuttingDown(_) => Some(Response::text(503, "shutting down\n")),
                }
            }
            Ok(Route::Stream(op)) => {
                // Stream ops are stateful: no warm probe, no
                // coalescing — straight through the same bounded
                // admission point as API work.
                let endpoint = op.endpoint();
                let job = ComputeJob {
                    thread: self.id,
                    conn: id,
                    work: Work::Stream(op),
                    path: request.path.clone(),
                    arrived,
                };
                match shared.queue.try_push(job) {
                    Pushed::Accepted => {
                        shared.note_received_parts(endpoint, endpoint);
                        None
                    }
                    Pushed::Full(_) => Some(shared.shed_response()),
                    Pushed::ShuttingDown(_) => Some(Response::text(503, "shutting down\n")),
                }
            }
        }
    }

    fn on_completion(&mut self, completion: Completion) {
        let Some(conn) = self.conns.get_mut(&completion.conn) else {
            return; // the connection died while its job computed
        };
        conn.inflight = false;
        self.enqueue_response(completion.conn, completion.response);
        self.pump(completion.conn);
    }

    /// Serializes a response (connection header per negotiated state,
    /// integrity stamp, armed serve-plane faults) onto the
    /// connection's output buffer and drains opportunistically.
    fn enqueue_response(&mut self, id: u64, response: Response) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        if conn.dead || conn.severed {
            return;
        }
        let keep = conn.keep_alive && !conn.close_after_drain;
        let (bytes, sever) = wire_bytes(&response.with_keep_alive(keep));
        conn.out.extend_from_slice(&bytes);
        if sever {
            conn.severed = true;
            conn.close_after_drain = true;
        }
        self.writable(id);
    }

    fn writable(&mut self, id: u64) {
        let now = Instant::now();
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        while conn.has_output() {
            match conn.stream.write(&conn.out[conn.out_pos..]) {
                Ok(0) => {
                    conn.dead = true;
                    return;
                }
                Ok(n) => {
                    conn.out_pos += n;
                    conn.last_activity = now;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    return;
                }
            }
        }
        conn.out.clear();
        conn.out_pos = 0;
        if conn.severed {
            let _ = conn.stream.shutdown(Shutdown::Both);
            conn.dead = true;
            return;
        }
        if (conn.close_after_drain || conn.peer_closed) && conn.finished() {
            conn.dead = true;
        }
    }

    /// Time-based state transitions: stalled-read expiry, slowloris
    /// 408s, write-stall and idle closes.
    fn sweep(&mut self, now: Instant) {
        let deadline = self.shared.deadline;
        let mut resume_parse = Vec::new();
        let mut expire = Vec::new();
        for (&id, conn) in self.conns.iter_mut() {
            if conn.dead {
                continue;
            }
            // A close-marked connection owing nothing closes now —
            // without this, an idle keep-alive conn at shutdown would
            // sit out the full idle timeout (reads stop during drain,
            // so even the peer's FIN goes unnoticed).
            if conn.close_after_drain && conn.finished() {
                conn.dead = true;
                continue;
            }
            if let Some(until) = conn.stall_until {
                if now >= until {
                    conn.stall_until = None;
                    resume_parse.push(id);
                }
            }
            if let Some(since) = conn.partial_since {
                // Slowloris: a request that never completes times out
                // against the same per-request deadline as real work —
                // but only once every earlier response has drained, so
                // pipelined responses stay in order.
                if conn.finished() && now.saturating_duration_since(since) >= deadline {
                    expire.push(id);
                    continue;
                }
            }
            if conn.has_output()
                && now.saturating_duration_since(conn.last_activity) >= WRITE_STALL_TIMEOUT
            {
                conn.dead = true;
                continue;
            }
            if conn.finished()
                && conn.buf.is_empty()
                && now.saturating_duration_since(conn.last_activity) >= IDLE_TIMEOUT
            {
                conn.dead = true;
            }
        }
        for id in resume_parse {
            self.parse_ready(id);
        }
        for id in expire {
            ServeMetrics::bump(&self.shared.metrics.deadline_expired);
            if let Some(conn) = self.conns.get_mut(&id) {
                conn.keep_alive = false;
                conn.buf.clear();
                conn.partial_since = None;
                conn.close_after_drain = true;
            }
            self.enqueue_response(
                id,
                Response::text(408, "deadline expired before a complete request arrived\n"),
            );
        }
    }

    /// How long the poll may sleep before some timed transition is due.
    fn next_timeout(&self, stopping: bool) -> Duration {
        let now = Instant::now();
        let mut timeout = if stopping { DRAIN_POLL } else { IDLE_POLL };
        for conn in self.conns.values() {
            if let Some(until) = conn.stall_until {
                timeout = timeout.min(until.saturating_duration_since(now));
            }
            if let Some(since) = conn.partial_since {
                if conn.finished() {
                    timeout =
                        timeout.min((since + self.shared.deadline).saturating_duration_since(now));
                }
            }
            if conn.has_output() {
                timeout = timeout
                    .min((conn.last_activity + WRITE_STALL_TIMEOUT).saturating_duration_since(now));
            }
        }
        timeout.max(Duration::from_millis(1))
    }

    fn reap(&mut self) {
        let metrics = &self.shared.metrics;
        self.conns.retain(|_, conn| {
            if conn.dead {
                ServeMetrics::drop_gauge(&metrics.conns_open);
                false
            } else {
                true
            }
        });
    }
}
