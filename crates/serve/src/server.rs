//! The daemon: accept loop, worker pool, and the full request path.
//!
//! One nonblocking accept thread admits connections into the
//! [`BoundedQueue`] (or sheds them at the door); `workers` threads pull
//! connections, parse, route, and answer. The API path layers, in
//! order: a per-request deadline (checked when the job is *dequeued*,
//! so work that already overstayed its queue wait is aborted before it
//! starts — the watchdog discipline from the runner), the tiered
//! result cache (a memory hit bypasses the simulator entirely; a disk
//! hit restores a previous session's bytes and promotes them), and
//! singleflight coalescing (concurrent identical requests ride one
//! computation). Shutdown — admin route or signal — stops admission,
//! drains what was admitted, joins every thread, and hands back the
//! request timeline.

use crate::coalesce::{Join, Singleflight, Waited};
use crate::http::{read_request, Request, Response};
use crate::metrics::ServeMetrics;
use crate::pool::{BoundedQueue, Pushed};
use crate::router::{route, ApiCall, Route};
use crate::signal;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tcor_common::{fault, fxhash64, ErrorKind, TcorError, TcorResult};
use tcor_obs::RequestSpan;
use tcor_pcache::{BreakerConfig, CacheKey, CachedBody, ResultCache, Tier, TieredCache};
use tcor_runner::{Json, Telemetry};

/// A computed API response body: what the backend produces, what
/// coalesced followers share. Cached (in either tier) as a
/// [`CachedBody`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ApiBody {
    /// `Content-Type` of the rendered body.
    pub content_type: String,
    /// The rendered body (JSON or CSV text).
    pub body: String,
}

impl ApiBody {
    /// The cacheable form of this body.
    pub fn to_cached(&self) -> CachedBody {
        CachedBody::text(self.content_type.clone(), self.body.clone())
    }

    /// Restores a body from its cached form. Total: cached bodies were
    /// written from strings, and integrity-validated on load.
    pub fn from_cached(body: &CachedBody) -> Self {
        ApiBody {
            content_type: body.content_type.clone(),
            body: String::from_utf8_lossy(&body.bytes).into_owned(),
        }
    }
}

/// The simulator behind the daemon. Implementations must be callable
/// from any worker concurrently; expensive work should memoize through
/// `tcor_runner::ArtifactStore` so coalesced *sequential* repeats stay
/// cheap too.
pub trait Backend: Send + Sync + 'static {
    /// Computes the response body for one canonical call.
    ///
    /// # Errors
    ///
    /// `Config`-class errors map to 404 (unknown workload/config/...),
    /// everything else to 500.
    fn call(&self, call: &ApiCall) -> TcorResult<ApiBody>;

    /// A hash of the producing code and result schema, folded into
    /// every cache key so a rebuilt simulator never serves a previous
    /// build's persisted bytes. The default (0) is fine for backends
    /// that never persist.
    fn version(&self) -> u64 {
        0
    }
}

/// Daemon tuning knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// TCP port on 127.0.0.1; 0 binds an ephemeral port.
    pub port: u16,
    /// Worker threads answering requests.
    pub workers: usize,
    /// Bounded-queue depth; beyond it requests are shed with 429.
    pub queue_depth: usize,
    /// Memory-tier response-cache capacity, entries.
    pub cache_cap: usize,
    /// Per-request deadline, accept to answer.
    pub deadline: Duration,
    /// Persistent-tier directory (`--cache-dir`); `None` disables
    /// persistence and the daemon behaves exactly as before it existed.
    pub cache_dir: Option<PathBuf>,
    /// Persistent-tier byte budget (`--cache-disk-bytes`).
    pub cache_disk_bytes: u64,
    /// Disk-breaker trip threshold (consecutive I/O errors).
    pub breaker_threshold: u32,
    /// Disk-breaker cooldown before a half-open probe.
    pub breaker_cooldown: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let breaker = BreakerConfig::default();
        ServeConfig {
            port: 0,
            workers: 4,
            queue_depth: 64,
            cache_cap: 256,
            deadline: Duration::from_secs(30),
            cache_dir: None,
            cache_disk_bytes: 256 << 20,
            breaker_threshold: breaker.threshold,
            breaker_cooldown: breaker.cooldown,
        }
    }
}

/// Outcome of a flight: the shared body, or the shared failure.
type FlightOut = Result<Arc<CachedBody>, Arc<TcorError>>;

struct Conn {
    stream: TcpStream,
    accepted: Instant,
}

struct Shared {
    stop: AtomicBool,
    queue: BoundedQueue<Conn>,
    metrics: ServeMetrics,
    cache: Arc<dyn ResultCache>,
    flights: Singleflight<FlightOut>,
    backend: Arc<dyn Backend>,
    telemetry: Option<Arc<Telemetry>>,
    deadline: Duration,
    spans: Mutex<Vec<RequestSpan>>,
    started: Instant,
}

/// Most request spans retained for the timeline export.
const MAX_SPANS: usize = 65_536;
/// Accept-loop poll period while idle. Short enough that connection
/// admission never dominates a warm (cache-hit) response; the idle
/// cost is ~2k no-op accept calls per second on one thread.
const POLL: Duration = Duration::from_micros(500);
/// Per-connection socket timeout (a stuck peer cannot pin a worker).
const SOCKET_TIMEOUT: Duration = Duration::from_secs(10);
/// How long the accept thread will wait to drain a refused request.
const REFUSE_DRAIN_TIMEOUT: Duration = Duration::from_millis(250);

impl Shared {
    fn event(&self, name: &str, fields: Vec<(String, Json)>) {
        if let Some(t) = &self.telemetry {
            t.event(name, fields);
        }
    }

    fn record_span(&self, span: RequestSpan) {
        let mut spans = self.spans.lock().unwrap_or_else(PoisonError::into_inner);
        if spans.len() < MAX_SPANS {
            spans.push(span);
        }
    }

    /// The `GET /metrics` body: serve-plane counters plus the result
    /// cache's per-tier counters under `pcache/`, the degraded flag,
    /// and — when a fault injector is armed — per-point fire counts
    /// under `fault/` so chaos runs can audit their schedule.
    fn metrics_text(&self) -> String {
        let mut reg = self.metrics.registry();
        reg.merge(&self.cache.stats().registry("pcache"));
        reg.add("serve/degraded", u64::from(self.cache.degraded()));
        for (point, fired) in fault::snapshot() {
            reg.add(&format!("fault/{point}"), fired);
        }
        reg.to_string()
    }

    /// The `Retry-After` hint handed to a shed request, in ms:
    /// (queue depth + 1) × the EWMA service time, clamped to a range a
    /// client can act on. Before any request has completed the EWMA is
    /// empty and the hint falls back to a conservative one second.
    fn retry_after_hint_ms(&self) -> u64 {
        let svc_us = self.metrics.service_time_us.load(Ordering::Relaxed);
        if svc_us == 0 {
            return 1000;
        }
        let depth = self.queue.depth() as u64;
        ((depth + 1) * svc_us / 1000).clamp(25, 30_000)
    }
}

/// A running daemon.
pub struct ServerHandle {
    addr: SocketAddr,
    accept: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// The bound address (resolves `--port 0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown (same path as `POST /admin/shutdown`).
    pub fn stop(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
    }

    /// Current `GET /metrics` body, read in-process.
    pub fn metrics_text(&self) -> String {
        self.shared.metrics_text()
    }

    /// Blocks until the daemon has drained and every thread has
    /// exited; returns the recorded request timeline.
    pub fn wait(self) -> Vec<RequestSpan> {
        let _ = self.accept.join();
        for w in self.workers {
            let _ = w.join();
        }
        std::mem::take(
            &mut self
                .shared
                .spans
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        )
    }
}

/// Binds 127.0.0.1:`port` and starts the accept loop and worker pool,
/// building the result cache from `config` (`cache_dir` attaches the
/// persistent tier).
///
/// # Errors
///
/// A serve-class error if the port cannot be bound, or an I/O error if
/// the cache directory cannot be opened.
pub fn start(
    config: ServeConfig,
    backend: Arc<dyn Backend>,
    telemetry: Option<Arc<Telemetry>>,
) -> TcorResult<ServerHandle> {
    let disk = config
        .cache_dir
        .clone()
        .map(|dir| (dir, config.cache_disk_bytes));
    let cache: Arc<dyn ResultCache> = Arc::new(
        TieredCache::open(config.cache_cap, disk)?.with_breaker_config(BreakerConfig {
            threshold: config.breaker_threshold,
            cooldown: config.breaker_cooldown,
        }),
    );
    start_with_cache(config, backend, telemetry, cache)
}

/// [`start`] with a caller-supplied result cache — the path that lets
/// the daemon and its backend share one cache (`tcor-sim serve` hands
/// the same tiers to `SimBackend` so rendered results persist whether
/// they were requested over HTTP or computed inside the simulator).
///
/// Before accepting traffic, runs the cache's warm-start pass against
/// the backend's version: persisted entries are re-validated (stale or
/// corrupt ones evicted) so a restarted daemon serves its working set
/// from disk at warm latency, starting with the very first request.
///
/// # Errors
///
/// A serve-class error if the port cannot be bound.
pub fn start_with_cache(
    config: ServeConfig,
    backend: Arc<dyn Backend>,
    telemetry: Option<Arc<Telemetry>>,
    cache: Arc<dyn ResultCache>,
) -> TcorResult<ServerHandle> {
    let listener = TcpListener::bind(("127.0.0.1", config.port)).map_err(|e| {
        TcorError::with_source(
            ErrorKind::Serve,
            format!("binding 127.0.0.1:{}", config.port),
            e,
        )
    })?;
    let addr = listener
        .local_addr()
        .map_err(|e| TcorError::with_source(ErrorKind::Serve, "reading bound address", e))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| TcorError::with_source(ErrorKind::Serve, "setting listener nonblocking", e))?;
    let (warm_valid, warm_evicted) = cache.warm_start(backend.version());
    let shared = Arc::new(Shared {
        stop: AtomicBool::new(false),
        queue: BoundedQueue::new(config.queue_depth),
        metrics: ServeMetrics::new(),
        cache,
        flights: Singleflight::new(),
        backend,
        telemetry,
        deadline: config.deadline,
        spans: Mutex::new(Vec::new()),
        started: Instant::now(),
    });
    if warm_valid > 0 || warm_evicted > 0 {
        shared.event(
            "cache_warm_start",
            vec![
                ("valid".to_string(), Json::UInt(warm_valid as u64)),
                ("evicted".to_string(), Json::UInt(warm_evicted as u64)),
            ],
        );
    }
    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || accept_loop(&listener, &shared))
    };
    let workers = (0..config.workers.max(1))
        .map(|w| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || worker_loop(w, &shared))
        })
        .collect();
    Ok(ServerHandle {
        addr,
        accept,
        workers,
        shared,
    })
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        if shared.stop.load(Ordering::SeqCst) || signal::requested() {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_read_timeout(Some(SOCKET_TIMEOUT));
                let _ = stream.set_write_timeout(Some(SOCKET_TIMEOUT));
                let conn = Conn {
                    stream,
                    accepted: Instant::now(),
                };
                match shared.queue.try_push(conn) {
                    Pushed::Accepted => {}
                    Pushed::Full(conn) => {
                        ServeMetrics::bump(&shared.metrics.shed);
                        let hint_ms = shared.retry_after_hint_ms();
                        shared
                            .metrics
                            .retry_after_ms
                            .store(hint_ms, Ordering::Relaxed);
                        shared.event(
                            "request_shed",
                            vec![("retry_after_ms".to_string(), Json::UInt(hint_ms))],
                        );
                        // Integer-seconds `Retry-After` for generic
                        // clients, the precise ms hint for ours.
                        let resp = Response::text(429, "queue full, retry shortly\n")
                            .with_header("Retry-After", hint_ms.div_ceil(1000).max(1).to_string())
                            .with_header("X-Tcor-Retry-After-Ms", hint_ms.to_string());
                        refuse(&conn, &resp);
                    }
                    Pushed::ShuttingDown(conn) => {
                        refuse(&conn, &Response::text(503, "shutting down\n"));
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL);
            }
            Err(_) => std::thread::sleep(POLL),
        }
    }
    // Stop admitting, let workers drain what was accepted, then exit.
    shared.queue.close();
}

/// Answers a connection refused at admission. The pending request is
/// drained first (under a short timeout so a slow peer cannot stall
/// admission): closing with unread data in the receive buffer makes
/// the kernel RST the connection and the peer would lose the 429/503
/// we are about to send.
fn refuse(conn: &Conn, response: &Response) {
    let _ = conn.stream.set_read_timeout(Some(REFUSE_DRAIN_TIMEOUT));
    let _ = read_request(&conn.stream);
    let _ = response.write_to(&conn.stream);
}

fn worker_loop(worker: usize, shared: &Shared) {
    while let Some(conn) = shared.queue.pop() {
        handle_conn(shared, worker, conn);
    }
}

fn handle_conn(shared: &Shared, worker: usize, conn: Conn) {
    // Chaos: a stalled read. The sleep runs with the connection held,
    // exactly like a peer (or kernel) that stops delivering bytes; a
    // stall past SOCKET_TIMEOUT turns into a read-timeout 400.
    if let Some(ms) = fault::fire("serve/stall_read") {
        std::thread::sleep(Duration::from_millis(ms));
    }
    let req = match read_request(&conn.stream) {
        Ok(req) => req,
        Err(e) => {
            let _ = Response::text(400, format!("{e}\n")).write_to(&conn.stream);
            return;
        }
    };
    let response = match route(&req) {
        Err(resp) => resp,
        Ok(Route::Health) => {
            if shared.cache.degraded() {
                Response::text(200, "degraded\n")
            } else {
                Response::text(200, "ok\n")
            }
        }
        Ok(Route::Metrics) => Response::text(200, shared.metrics_text()),
        Ok(Route::Shutdown) => {
            shared.stop.store(true, Ordering::SeqCst);
            Response::text(200, "shutting down\n")
        }
        Ok(Route::Api(call)) => {
            let (response, source) = answer_api(shared, &call, conn.accepted);
            finish_api(shared, worker, &req, &conn, &response, source);
            response
        }
    };
    send_response(&conn.stream, &response);
}

/// Sends `response`, stamped with `X-Tcor-Body-Hash` (fxhash64 of the
/// body, hex) so a client can detect in-flight corruption — then
/// applies any armed serve-plane faults to the serialized bytes:
/// `serve/corrupt_response` flips the final byte after the hash was
/// computed, `serve/drop_conn` truncates mid-body and severs the
/// connection, the way a dying peer or middlebox would.
fn send_response(stream: &TcpStream, response: &Response) {
    let body_len = response.body.len();
    let stamped = response.clone().with_header(
        "X-Tcor-Body-Hash",
        format!("{:016x}", fxhash64(response.body.as_bytes())),
    );
    let mut bytes = stamped.to_bytes();
    if fault::fire("serve/corrupt_response").is_some() {
        if let Some(last) = bytes.last_mut() {
            *last ^= 0x5A;
        }
    }
    let mut w = stream;
    if let Some(keep) = fault::fire("serve/drop_conn") {
        let body_off = bytes.len() - body_len;
        let cut = (body_off + keep as usize).min(bytes.len().saturating_sub(1));
        let _ = w.write_all(&bytes[..cut]).and_then(|()| w.flush());
        let _ = stream.shutdown(std::net::Shutdown::Both);
        return;
    }
    let _ = w.write_all(&bytes).and_then(|()| w.flush());
}

/// Bookkeeping common to every answered API request: counters, the
/// `request_done` telemetry event, and the timeline span.
fn finish_api(
    shared: &Shared,
    worker: usize,
    req: &Request,
    conn: &Conn,
    response: &Response,
    source: &'static str,
) {
    ServeMetrics::bump(&shared.metrics.done);
    if response.status >= 500 {
        ServeMetrics::bump(&shared.metrics.errors);
    }
    let wall_ms = conn.accepted.elapsed().as_secs_f64() * 1e3;
    shared.metrics.observe_service_time((wall_ms * 1e3) as u64);
    let start_ms = (conn.accepted - shared.started).as_secs_f64() * 1e3;
    shared.event(
        "request_done",
        vec![
            ("endpoint".to_string(), Json::str(req.path.clone())),
            ("status".to_string(), Json::UInt(response.status as u64)),
            ("wall_ms".to_string(), Json::Float(wall_ms)),
            ("source".to_string(), Json::str(source)),
        ],
    );
    shared.record_span(RequestSpan {
        endpoint: req.path.clone(),
        worker: worker as u64,
        start_ms,
        wall_ms,
        status: response.status,
        source,
    });
}

fn error_response(e: &TcorError) -> Response {
    let status = match e.kind() {
        ErrorKind::Config => 404,
        ErrorKind::Serve => 400,
        _ => 500,
    };
    Response::text(status, format!("{}: {e}\n", e.kind()))
}

/// The API request path: deadline → cache → singleflight → backend.
/// Returns the response plus how it was produced (for telemetry).
fn answer_api(shared: &Shared, call: &ApiCall, accepted: Instant) -> (Response, &'static str) {
    ServeMetrics::bump(&shared.metrics.received);
    shared.event(
        "request_received",
        vec![
            ("endpoint".to_string(), Json::str(call.endpoint())),
            ("request".to_string(), Json::str(call.canonical())),
        ],
    );
    // Deadline check at dequeue: a request that overstayed its queue
    // wait is answered 504 without ever starting its job.
    if accepted.elapsed() >= shared.deadline {
        ServeMetrics::bump(&shared.metrics.deadline_expired);
        return (
            Response::text(504, "deadline expired while queued\n"),
            "aborted",
        );
    }
    let key = CacheKey::new(call.cache_key(), shared.backend.version());
    // Up to one follower re-lead: an abandoned flight (the leader's
    // computation panicked) removes itself from the flight map, so the
    // first follower to re-enter `join` becomes the new leader and
    // recomputes. Followers therefore never surface a 500 for a panic
    // that was not their own request's fault — unless the retry leader
    // panics too.
    for attempt in 0..2u32 {
        if let Some((body, tier)) = shared.cache.get(&key) {
            ServeMetrics::bump(&shared.metrics.warm_hits);
            match tier {
                Tier::Mem => ServeMetrics::bump(&shared.metrics.mem_hits),
                Tier::Disk => ServeMetrics::bump(&shared.metrics.disk_hits),
            }
            // The span source distinguishes the tiers ("cache" =
            // memory, "disk" = restored and promoted).
            let source = match tier {
                Tier::Mem => "cache",
                Tier::Disk => "disk",
            };
            return (ok_response(&body, tier.label()), source);
        }
        match shared.flights.join(key.identity) {
            Join::Leader(token) => {
                let outcome = catch_unwind(AssertUnwindSafe(|| shared.backend.call(call)));
                return match outcome {
                    Ok(Ok(body)) => {
                        let body = Arc::new(body.to_cached());
                        shared.cache.put(&key, &body);
                        ServeMetrics::bump(&shared.metrics.cold_computes);
                        token.finish(Ok(Arc::clone(&body)));
                        (ok_response(&body, "miss"), "compute")
                    }
                    Ok(Err(e)) => {
                        let e = Arc::new(e);
                        token.finish(Err(Arc::clone(&e)));
                        (error_response(&e), "compute")
                    }
                    Err(_panic) => {
                        // Dropping the token abandons the flight,
                        // waking followers; the panic is contained to
                        // this request.
                        drop(token);
                        (
                            Response::text(500, "computation panicked; see server log\n"),
                            "compute",
                        )
                    }
                };
            }
            Join::Follower(handle) => {
                ServeMetrics::bump(&shared.metrics.coalesced);
                shared.event(
                    "request_coalesced",
                    vec![("request".to_string(), Json::str(call.canonical()))],
                );
                let remaining = shared
                    .deadline
                    .checked_sub(accepted.elapsed())
                    .unwrap_or(Duration::ZERO);
                match handle.wait(Some(remaining)) {
                    Waited::Done(Ok(body)) => {
                        return (ok_response(&body, "coalesced"), "coalesced")
                    }
                    Waited::Done(Err(e)) => return (error_response(&e), "coalesced"),
                    Waited::Abandoned if attempt == 0 => {
                        ServeMetrics::bump(&shared.metrics.flight_retries);
                        continue;
                    }
                    Waited::Abandoned => break,
                    Waited::TimedOut => {
                        ServeMetrics::bump(&shared.metrics.deadline_expired);
                        return (
                            Response::text(504, "deadline expired awaiting coalesced result\n"),
                            "coalesced",
                        );
                    }
                }
            }
        }
    }
    (
        Response::text(500, "leading computation failed; retry\n"),
        "coalesced",
    )
}

/// A 200 carrying a cached body, labeled with which tier (or miss)
/// produced it: `X-Tcor-Cache: mem|disk|miss`.
fn ok_response(body: &CachedBody, cache_state: &'static str) -> Response {
    Response {
        status: 200,
        content_type: body.content_type.clone(),
        headers: vec![("X-Tcor-Cache", cache_state.to_string())],
        body: String::from_utf8_lossy(&body.bytes).into_owned(),
    }
}
