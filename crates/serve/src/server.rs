//! The daemon: event-driven connection plane plus a bounded compute
//! pool.
//!
//! A small set of event threads ([`crate::event`]) own every socket —
//! nonblocking accept, keep-alive multiplexing, pipelined parsing, and
//! write-drain — and answer control routes and warm cache hits inline.
//! Only cache misses cross the queue: a [`ComputeJob`] goes through
//! the [`BoundedQueue`] (full ⇒ 429 with a dynamic `Retry-After`),
//! `workers` threads pull jobs and run the API path, and the finished
//! response rides an [`EventInbox`] back to the event thread that owns
//! the connection. The API path layers, in order: a per-request
//! deadline (checked when the job is *dequeued*, so work that already
//! overstayed its queue wait is aborted before it starts — the
//! watchdog discipline from the runner), the tiered result cache (a
//! memory hit bypasses the simulator entirely; a disk hit restores a
//! previous session's bytes and promotes them), and singleflight
//! coalescing (concurrent identical requests ride one computation).
//! Shutdown — admin route or signal — stops admission, drains what was
//! admitted, joins every thread, and hands back the request timeline.

use crate::coalesce::{Join, Singleflight, Waited};
use crate::event::{event_loop, Completion, EventInbox};
use crate::http::Response;
use crate::metrics::ServeMetrics;
use crate::pool::BoundedQueue;
use crate::router::{ApiCall, StreamOp};
use crate::stream::StreamPlane;
use std::net::{SocketAddr, TcpListener};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tcor_common::{fault, fxhash64, ErrorKind, TcorError, TcorResult};
use tcor_obs::RequestSpan;
use tcor_pcache::{BreakerConfig, CacheKey, CachedBody, ResultCache, Tier, TieredCache};
use tcor_runner::{Json, Telemetry};

/// A computed API response body: what the backend produces, what
/// coalesced followers share. Cached (in either tier) as a
/// [`CachedBody`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ApiBody {
    /// `Content-Type` of the rendered body.
    pub content_type: String,
    /// The rendered body (JSON or CSV text).
    pub body: String,
}

impl ApiBody {
    /// The cacheable form of this body.
    pub fn to_cached(&self) -> CachedBody {
        CachedBody::text(self.content_type.clone(), self.body.clone())
    }

    /// Restores a body from its cached form. Total: cached bodies were
    /// written from strings, and integrity-validated on load.
    pub fn from_cached(body: &CachedBody) -> Self {
        ApiBody {
            content_type: body.content_type.clone(),
            body: String::from_utf8_lossy(&body.bytes).into_owned(),
        }
    }
}

/// The simulator behind the daemon. Implementations must be callable
/// from any worker concurrently; expensive work should memoize through
/// `tcor_runner::ArtifactStore` so coalesced *sequential* repeats stay
/// cheap too.
pub trait Backend: Send + Sync + 'static {
    /// Computes the response body for one canonical call.
    ///
    /// # Errors
    ///
    /// `Config`-class errors map to 404 (unknown workload/config/...),
    /// everything else to 500.
    fn call(&self, call: &ApiCall) -> TcorResult<ApiBody>;

    /// A hash of the producing code and result schema, folded into
    /// every cache key so a rebuilt simulator never serves a previous
    /// build's persisted bytes. The default (0) is fine for backends
    /// that never persist.
    fn version(&self) -> u64 {
        0
    }
}

/// Daemon tuning knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// TCP port on 127.0.0.1; 0 binds an ephemeral port.
    pub port: u16,
    /// Compute-pool threads answering cold (cache-miss) requests.
    pub workers: usize,
    /// Event threads multiplexing connections (thread 0 also accepts).
    pub event_threads: usize,
    /// Bounded-queue depth; beyond it requests are shed with 429.
    pub queue_depth: usize,
    /// Memory-tier response-cache capacity, entries.
    pub cache_cap: usize,
    /// Per-request deadline, first byte to answer.
    pub deadline: Duration,
    /// Persistent-tier directory (`--cache-dir`); `None` disables
    /// persistence and the daemon behaves exactly as before it existed.
    pub cache_dir: Option<PathBuf>,
    /// Persistent-tier byte budget (`--cache-disk-bytes`).
    pub cache_disk_bytes: u64,
    /// Disk-breaker trip threshold (consecutive I/O errors).
    pub breaker_threshold: u32,
    /// Disk-breaker cooldown before a half-open probe.
    pub breaker_cooldown: Duration,
    /// Streaming-session budgets (`--stream-*` flags).
    pub stream: tcor_stream::StreamConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let breaker = BreakerConfig::default();
        ServeConfig {
            port: 0,
            workers: 4,
            event_threads: 2,
            queue_depth: 64,
            cache_cap: 256,
            deadline: Duration::from_secs(30),
            cache_dir: None,
            cache_disk_bytes: 256 << 20,
            breaker_threshold: breaker.threshold,
            breaker_cooldown: breaker.cooldown,
            stream: tcor_stream::StreamConfig::default(),
        }
    }
}

/// Outcome of a flight: the shared body, or the shared failure.
type FlightOut = Result<Arc<CachedBody>, Arc<TcorError>>;

/// What a queued job runs: cacheable simulator work, or a stateful
/// streaming-session operation (never cached or coalesced).
pub(crate) enum Work {
    /// Canonical simulator call (cache + singleflight path).
    Api(ApiCall),
    /// Streaming profile-session operation.
    Stream(StreamOp),
}

/// A cold request crossing from the connection plane to the compute
/// pool. Admission happened when this was pushed (that is where 429s
/// come from); the answer returns as a [`Completion`] to the event
/// thread that owns the connection.
pub(crate) struct ComputeJob {
    /// Index of the owning event thread.
    pub(crate) thread: usize,
    /// Connection id within that thread.
    pub(crate) conn: u64,
    /// The work to run.
    pub(crate) work: Work,
    /// Request path, for the timeline span.
    pub(crate) path: String,
    /// When the request's first byte arrived (deadline anchor).
    pub(crate) arrived: Instant,
}

pub(crate) struct Shared {
    pub(crate) stop: AtomicBool,
    pub(crate) queue: BoundedQueue<ComputeJob>,
    pub(crate) metrics: ServeMetrics,
    pub(crate) cache: Arc<dyn ResultCache>,
    flights: Singleflight<FlightOut>,
    backend: Arc<dyn Backend>,
    telemetry: Option<Arc<Telemetry>>,
    pub(crate) deadline: Duration,
    /// The streaming profile plane (sessions, budgets, TTL).
    pub(crate) stream: StreamPlane,
    spans: Mutex<Vec<RequestSpan>>,
    started: Instant,
    /// One inbox per event thread; workers post completions here.
    pub(crate) inboxes: Vec<Arc<EventInbox>>,
}

/// Most request spans retained for the timeline export.
const MAX_SPANS: usize = 65_536;

impl Shared {
    fn event(&self, name: &str, fields: Vec<(String, Json)>) {
        if let Some(t) = &self.telemetry {
            t.event(name, fields);
        }
    }

    fn record_span(&self, span: RequestSpan) {
        let mut spans = self.spans.lock().unwrap_or_else(PoisonError::into_inner);
        if spans.len() < MAX_SPANS {
            spans.push(span);
        }
    }

    /// The `GET /metrics` body: serve-plane counters plus the result
    /// cache's per-tier counters under `pcache/`, the degraded flag,
    /// and — when a fault injector is armed — per-point fire counts
    /// under `fault/` so chaos runs can audit their schedule.
    pub(crate) fn metrics_text(&self) -> String {
        let mut reg = self.metrics.registry();
        reg.merge(&self.cache.stats().registry("pcache"));
        reg.add("serve/degraded", u64::from(self.cache.degraded()));
        for (point, fired) in fault::snapshot() {
            reg.add(&format!("fault/{point}"), fired);
        }
        reg.to_string()
    }

    /// The `Retry-After` hint handed to a shed request, in ms:
    /// (queue depth + 1) × the EWMA service time, clamped to a range a
    /// client can act on. Before any request has completed the EWMA is
    /// empty and the hint falls back to a conservative one second.
    fn retry_after_hint_ms(&self) -> u64 {
        let svc_us = self.metrics.service_time_us.load(Ordering::Relaxed);
        if svc_us == 0 {
            return 1000;
        }
        let depth = self.queue.depth() as u64;
        ((depth + 1) * svc_us / 1000).clamp(25, 30_000)
    }

    /// Counts an admitted API request (inline warm answer, or a job
    /// accepted by the queue — shed requests are *not* received).
    pub(crate) fn note_received(&self, call: &ApiCall) {
        self.note_received_parts(call.endpoint(), &call.canonical());
    }

    /// [`Self::note_received`] when the call was already moved into a
    /// queued job.
    pub(crate) fn note_received_parts(&self, endpoint: &str, canonical: &str) {
        ServeMetrics::bump(&self.metrics.received);
        self.event(
            "request_received",
            vec![
                ("endpoint".to_string(), Json::str(endpoint)),
                ("request".to_string(), Json::str(canonical)),
            ],
        );
    }

    /// Probes the result cache for an inline warm answer. A hit never
    /// touches the queue: the event thread serializes it directly, so
    /// warm latency is bounded by syscall cost, not queue depth.
    pub(crate) fn try_warm(&self, call: &ApiCall) -> Option<(Response, &'static str)> {
        let key = CacheKey::new(call.cache_key(), self.backend.version());
        let (body, tier) = self.cache.get(&key)?;
        ServeMetrics::bump(&self.metrics.warm_hits);
        match tier {
            Tier::Mem => ServeMetrics::bump(&self.metrics.mem_hits),
            Tier::Disk => ServeMetrics::bump(&self.metrics.disk_hits),
        }
        // The span source distinguishes the tiers ("cache" = memory,
        // "disk" = restored and promoted).
        let source = match tier {
            Tier::Mem => "cache",
            Tier::Disk => "disk",
        };
        Some((ok_response(&body, tier.label()), source))
    }

    /// The 429 for a request refused at a full queue: integer-seconds
    /// `Retry-After` for generic clients, the precise ms hint for ours.
    pub(crate) fn shed_response(&self) -> Response {
        ServeMetrics::bump(&self.metrics.shed);
        let hint_ms = self.retry_after_hint_ms();
        self.metrics
            .retry_after_ms
            .store(hint_ms, Ordering::Relaxed);
        self.event(
            "request_shed",
            vec![("retry_after_ms".to_string(), Json::UInt(hint_ms))],
        );
        Response::text(429, "queue full, retry shortly\n")
            .with_header("Retry-After", hint_ms.div_ceil(1000).max(1).to_string())
            .with_header("X-Tcor-Retry-After-Ms", hint_ms.to_string())
    }
}

/// A running daemon.
pub struct ServerHandle {
    addr: SocketAddr,
    events: Vec<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// The bound address (resolves `--port 0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown (same path as `POST /admin/shutdown`) and
    /// wakes the event threads so the drain starts immediately.
    pub fn stop(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        for inbox in &self.shared.inboxes {
            inbox.notify();
        }
    }

    /// Current `GET /metrics` body, read in-process.
    pub fn metrics_text(&self) -> String {
        self.shared.metrics_text()
    }

    /// Blocks until the daemon has drained and every thread has
    /// exited; returns the recorded request timeline.
    ///
    /// Join order matters: event threads first (they still need live
    /// workers to complete inflight jobs during the drain), then the
    /// queue closes and the workers run dry. A completion for a
    /// connection whose event thread already exited is dropped — its
    /// client is gone.
    pub fn wait(self) -> Vec<RequestSpan> {
        for e in self.events {
            let _ = e.join();
        }
        self.shared.queue.close();
        for w in self.workers {
            let _ = w.join();
        }
        std::mem::take(
            &mut self
                .shared
                .spans
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        )
    }
}

/// Binds 127.0.0.1:`port` and starts the event threads and compute
/// pool, building the result cache from `config` (`cache_dir` attaches
/// the persistent tier).
///
/// # Errors
///
/// A serve-class error if the port cannot be bound, or an I/O error if
/// the cache directory cannot be opened.
pub fn start(
    config: ServeConfig,
    backend: Arc<dyn Backend>,
    telemetry: Option<Arc<Telemetry>>,
) -> TcorResult<ServerHandle> {
    let disk = config
        .cache_dir
        .clone()
        .map(|dir| (dir, config.cache_disk_bytes));
    let cache: Arc<dyn ResultCache> = Arc::new(
        TieredCache::open(config.cache_cap, disk)?.with_breaker_config(BreakerConfig {
            threshold: config.breaker_threshold,
            cooldown: config.breaker_cooldown,
        }),
    );
    start_with_cache(config, backend, telemetry, cache)
}

/// [`start`] with a caller-supplied result cache — the path that lets
/// the daemon and its backend share one cache (`tcor-sim serve` hands
/// the same tiers to `SimBackend` so rendered results persist whether
/// they were requested over HTTP or computed inside the simulator).
///
/// Before accepting traffic, runs the cache's warm-start pass against
/// the backend's version: persisted entries are re-validated (stale or
/// corrupt ones evicted) so a restarted daemon serves its working set
/// from disk at warm latency, starting with the very first request.
///
/// # Errors
///
/// A serve-class error if the port cannot be bound.
pub fn start_with_cache(
    config: ServeConfig,
    backend: Arc<dyn Backend>,
    telemetry: Option<Arc<Telemetry>>,
    cache: Arc<dyn ResultCache>,
) -> TcorResult<ServerHandle> {
    let listener = TcpListener::bind(("127.0.0.1", config.port)).map_err(|e| {
        TcorError::with_source(
            ErrorKind::Serve,
            format!("binding 127.0.0.1:{}", config.port),
            e,
        )
    })?;
    let addr = listener
        .local_addr()
        .map_err(|e| TcorError::with_source(ErrorKind::Serve, "reading bound address", e))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| TcorError::with_source(ErrorKind::Serve, "setting listener nonblocking", e))?;
    let (warm_valid, warm_evicted) = cache.warm_start(backend.version());
    let event_threads = config.event_threads.max(1);
    let mut inboxes = Vec::with_capacity(event_threads);
    let mut wake_rxs = Vec::with_capacity(event_threads);
    for _ in 0..event_threads {
        let (inbox, rx) = EventInbox::new()?;
        inboxes.push(inbox);
        wake_rxs.push(rx);
    }
    let shared = Arc::new(Shared {
        stop: AtomicBool::new(false),
        queue: BoundedQueue::new(config.queue_depth),
        metrics: ServeMetrics::new(),
        cache,
        flights: Singleflight::new(),
        backend,
        telemetry,
        deadline: config.deadline,
        stream: StreamPlane::new(config.stream),
        spans: Mutex::new(Vec::new()),
        started: Instant::now(),
        inboxes: inboxes.clone(),
    });
    if warm_valid > 0 || warm_evicted > 0 {
        shared.event(
            "cache_warm_start",
            vec![
                ("valid".to_string(), Json::UInt(warm_valid as u64)),
                ("evicted".to_string(), Json::UInt(warm_evicted as u64)),
            ],
        );
    }
    let mut listener = Some(listener);
    let events = wake_rxs
        .into_iter()
        .enumerate()
        .map(|(t, rx)| {
            let shared = Arc::clone(&shared);
            let inbox = Arc::clone(&inboxes[t]);
            let listener = if t == 0 { listener.take() } else { None };
            std::thread::spawn(move || event_loop(t, shared, inbox, rx, listener))
        })
        .collect();
    let workers = (0..config.workers.max(1))
        .map(|w| {
            let shared = Arc::clone(&shared);
            let lane = (event_threads + w) as u64;
            std::thread::spawn(move || worker_loop(lane, &shared))
        })
        .collect();
    Ok(ServerHandle {
        addr,
        events,
        workers,
        shared,
    })
}

/// One compute-pool thread: pull jobs, run the API path, post the
/// completion back to the owning event thread. `lane` numbers the
/// thread in the span timeline after the event threads.
fn worker_loop(lane: u64, shared: &Shared) {
    while let Some(job) = shared.queue.pop() {
        let (response, source) = match &job.work {
            Work::Api(call) => answer_api(shared, call, job.arrived),
            Work::Stream(op) => answer_stream(shared, op, job.arrived),
        };
        finish_api(shared, lane, &job.path, job.arrived, &response, source);
        if let Some(inbox) = shared.inboxes.get(job.thread) {
            inbox.complete(Completion {
                conn: job.conn,
                response,
            });
        }
    }
}

/// Serializes a response for the wire: stamps `X-Tcor-Body-Hash`
/// (fxhash64 of the body, hex) so a client can detect in-flight
/// corruption, then applies any armed serve-plane faults to the bytes:
/// `serve/corrupt_response` flips the final byte after the hash was
/// computed; `serve/drop_conn` truncates mid-body (the returned flag
/// tells the event loop to sever the connection after the partial
/// write, the way a dying peer or middlebox would).
pub(crate) fn wire_bytes(response: &Response) -> (Vec<u8>, bool) {
    let body_len = response.body.len();
    let stamped = response.clone().with_header(
        "X-Tcor-Body-Hash",
        format!("{:016x}", fxhash64(response.body.as_bytes())),
    );
    let mut bytes = stamped.to_bytes();
    if fault::fire("serve/corrupt_response").is_some() {
        if let Some(last) = bytes.last_mut() {
            *last ^= 0x5A;
        }
    }
    if let Some(keep) = fault::fire("serve/drop_conn") {
        let body_off = bytes.len() - body_len;
        let cut = (body_off + keep as usize).min(bytes.len().saturating_sub(1));
        bytes.truncate(cut);
        return (bytes, true);
    }
    (bytes, false)
}

/// Bookkeeping common to every answered API request: counters, the
/// `request_done` telemetry event, and the timeline span. `lane` is
/// the answering thread (event threads first, then pool workers);
/// `arrived` anchors wall time at the request's first byte.
pub(crate) fn finish_api(
    shared: &Shared,
    lane: u64,
    path: &str,
    arrived: Instant,
    response: &Response,
    source: &'static str,
) {
    ServeMetrics::bump(&shared.metrics.done);
    if response.status >= 500 {
        ServeMetrics::bump(&shared.metrics.errors);
    }
    let wall_ms = arrived.elapsed().as_secs_f64() * 1e3;
    shared.metrics.observe_service_time((wall_ms * 1e3) as u64);
    let start_ms = arrived
        .saturating_duration_since(shared.started)
        .as_secs_f64()
        * 1e3;
    shared.event(
        "request_done",
        vec![
            ("endpoint".to_string(), Json::str(path)),
            ("status".to_string(), Json::UInt(response.status as u64)),
            ("wall_ms".to_string(), Json::Float(wall_ms)),
            ("source".to_string(), Json::str(source)),
        ],
    );
    shared.record_span(RequestSpan {
        endpoint: path.to_string(),
        worker: lane,
        start_ms,
        wall_ms,
        status: response.status,
        source,
    });
}

fn error_response(e: &TcorError) -> Response {
    let status = match e.kind() {
        ErrorKind::Config => 404,
        ErrorKind::Serve => 400,
        _ => 500,
    };
    Response::text(status, format!("{}: {e}\n", e.kind()))
}

/// The streaming path for a dequeued job: the same dequeue-time
/// deadline as API work, then the session plane (which contains its
/// own panics and types every expected failure).
fn answer_stream(shared: &Shared, op: &StreamOp, arrived: Instant) -> (Response, &'static str) {
    if arrived.elapsed() >= shared.deadline {
        ServeMetrics::bump(&shared.metrics.deadline_expired);
        return (
            Response::text(504, "deadline expired while queued\n"),
            "aborted",
        );
    }
    (shared.stream.handle(op, &shared.metrics), "stream")
}

/// The API request path for a dequeued job: deadline → cache →
/// singleflight → backend. Returns the response plus how it was
/// produced (for telemetry). Admission accounting already happened on
/// the event thread when the job was accepted.
fn answer_api(shared: &Shared, call: &ApiCall, arrived: Instant) -> (Response, &'static str) {
    // Deadline check at dequeue: a request that overstayed its queue
    // wait is answered 504 without ever starting its job.
    if arrived.elapsed() >= shared.deadline {
        ServeMetrics::bump(&shared.metrics.deadline_expired);
        return (
            Response::text(504, "deadline expired while queued\n"),
            "aborted",
        );
    }
    let key = CacheKey::new(call.cache_key(), shared.backend.version());
    // Up to one follower re-lead: an abandoned flight (the leader's
    // computation panicked) removes itself from the flight map, so the
    // first follower to re-enter `join` becomes the new leader and
    // recomputes. Followers therefore never surface a 500 for a panic
    // that was not their own request's fault — unless the retry leader
    // panics too.
    for attempt in 0..2u32 {
        if let Some((body, tier)) = shared.cache.get(&key) {
            ServeMetrics::bump(&shared.metrics.warm_hits);
            match tier {
                Tier::Mem => ServeMetrics::bump(&shared.metrics.mem_hits),
                Tier::Disk => ServeMetrics::bump(&shared.metrics.disk_hits),
            }
            // The span source distinguishes the tiers ("cache" =
            // memory, "disk" = restored and promoted).
            let source = match tier {
                Tier::Mem => "cache",
                Tier::Disk => "disk",
            };
            return (ok_response(&body, tier.label()), source);
        }
        match shared.flights.join(key.identity) {
            Join::Leader(token) => {
                let outcome = catch_unwind(AssertUnwindSafe(|| shared.backend.call(call)));
                return match outcome {
                    Ok(Ok(body)) => {
                        let body = Arc::new(body.to_cached());
                        shared.cache.put(&key, &body);
                        ServeMetrics::bump(&shared.metrics.cold_computes);
                        token.finish(Ok(Arc::clone(&body)));
                        (ok_response(&body, "miss"), "compute")
                    }
                    Ok(Err(e)) => {
                        let e = Arc::new(e);
                        token.finish(Err(Arc::clone(&e)));
                        (error_response(&e), "compute")
                    }
                    Err(_panic) => {
                        // Dropping the token abandons the flight,
                        // waking followers; the panic is contained to
                        // this request.
                        drop(token);
                        (
                            Response::text(500, "computation panicked; see server log\n"),
                            "compute",
                        )
                    }
                };
            }
            Join::Follower(handle) => {
                ServeMetrics::bump(&shared.metrics.coalesced);
                shared.event(
                    "request_coalesced",
                    vec![("request".to_string(), Json::str(call.canonical()))],
                );
                let remaining = shared
                    .deadline
                    .checked_sub(arrived.elapsed())
                    .unwrap_or(Duration::ZERO);
                match handle.wait(Some(remaining)) {
                    Waited::Done(Ok(body)) => {
                        return (ok_response(&body, "coalesced"), "coalesced")
                    }
                    Waited::Done(Err(e)) => return (error_response(&e), "coalesced"),
                    Waited::Abandoned if attempt == 0 => {
                        ServeMetrics::bump(&shared.metrics.flight_retries);
                        continue;
                    }
                    Waited::Abandoned => break,
                    Waited::TimedOut => {
                        ServeMetrics::bump(&shared.metrics.deadline_expired);
                        return (
                            Response::text(504, "deadline expired awaiting coalesced result\n"),
                            "coalesced",
                        );
                    }
                }
            }
        }
    }
    (
        Response::text(500, "leading computation failed; retry\n"),
        "coalesced",
    )
}

/// A 200 carrying a cached body, labeled with which tier (or miss)
/// produced it: `X-Tcor-Cache: mem|disk|miss`.
fn ok_response(body: &CachedBody, cache_state: &'static str) -> Response {
    Response {
        status: 200,
        content_type: body.content_type.clone(),
        headers: vec![("X-Tcor-Cache", cache_state.to_string())],
        body: String::from_utf8_lossy(&body.bytes).into_owned(),
        keep_alive: false,
    }
}
