//! Serving-plane counters, exported at `GET /metrics`.
//!
//! Lock-free atomics on the hot path; rendering goes through
//! [`tcor_common::MetricRegistry`] so the text format (`path = value`
//! lines, sorted) matches every other counter surface in the repo.

use std::sync::atomic::{AtomicU64, Ordering};
use tcor_common::MetricRegistry;

/// The daemon's counters. All monotonic; relaxed ordering is enough
/// (they are observability, not synchronization).
#[derive(Default)]
pub struct ServeMetrics {
    /// API requests admitted past routing.
    pub received: AtomicU64,
    /// Requests that joined another request's computation.
    pub coalesced: AtomicU64,
    /// Requests refused at a full queue (429).
    pub shed: AtomicU64,
    /// Requests answered (any status).
    pub done: AtomicU64,
    /// Responses served from either cache tier (mem + disk).
    pub warm_hits: AtomicU64,
    /// Responses served from the in-memory session tier.
    pub mem_hits: AtomicU64,
    /// Responses restored from the persistent disk tier.
    pub disk_hits: AtomicU64,
    /// Responses that ran the simulator.
    pub cold_computes: AtomicU64,
    /// Requests that hit their deadline (504).
    pub deadline_expired: AtomicU64,
    /// Requests answered 5xx.
    pub errors: AtomicU64,
    /// Followers that re-entered an abandoned flight as its new leader.
    pub flight_retries: AtomicU64,
    /// Gauge: the last `Retry-After` hint handed to a shed request, ms
    /// (queue depth × recent service time).
    pub retry_after_ms: AtomicU64,
    /// Gauge: EWMA of API service time (accept → answer), µs.
    pub service_time_us: AtomicU64,
    /// Connections accepted over the daemon's lifetime.
    pub conns_accepted: AtomicU64,
    /// Gauge: connections currently registered with an event thread.
    pub conns_open: AtomicU64,
    /// Requests served on an already-used (kept-alive) connection.
    pub keepalive_reuses: AtomicU64,
    /// Read events that parsed ≥ 2 pipelined requests in one burst.
    pub pipelined_batches: AtomicU64,
    /// Event-loop readiness-wait returns (readiness or timeout). The
    /// idle-poll elimination, observable: an idle daemon accrues ~2/s
    /// here where the old accept loop burned ~2000/s.
    pub eventloop_wakeups: AtomicU64,
    /// Requests rejected 413 from the head alone (declared body over
    /// the route's limit — the body was never buffered).
    pub body_rejected: AtomicU64,
    /// Streaming sessions opened.
    pub stream_sessions: AtomicU64,
    /// Streaming sessions swept by TTL expiry.
    pub stream_sessions_expired: AtomicU64,
    /// Gauge: streaming sessions currently live.
    pub stream_sessions_open: AtomicU64,
    /// Trace chunks accepted into a session.
    pub stream_chunks: AtomicU64,
    /// Accesses ingested across all sessions.
    pub stream_accesses: AtomicU64,
    /// Chunk payload bytes accepted across all sessions.
    pub stream_bytes: AtomicU64,
    /// Streaming operations refused with a typed 4xx (budget breach,
    /// unknown session, malformed chunk, ...).
    pub stream_rejected: AtomicU64,
    /// Curve snapshots rendered (live or final).
    pub stream_snapshots: AtomicU64,
}

impl ServeMetrics {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bumps a counter by one.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Decrements a gauge by one (saturating — a close racing a
    /// restart must never wrap the gauge to 2^64).
    pub fn drop_gauge(counter: &AtomicU64) {
        let _ = counter.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
            Some(v.saturating_sub(1))
        });
    }

    /// Folds one service-time sample (µs) into the EWMA gauge
    /// (α = 1/8). The read-modify-write races between workers, but the
    /// gauge is a shedding hint, not an invariant.
    pub fn observe_service_time(&self, sample_us: u64) {
        let prev = self.service_time_us.load(Ordering::Relaxed);
        let next = if prev == 0 {
            sample_us
        } else {
            prev - prev / 8 + sample_us / 8
        };
        self.service_time_us.store(next.max(1), Ordering::Relaxed);
    }

    /// Snapshot as a registry (sorted, mergeable, renderable).
    pub fn registry(&self) -> MetricRegistry {
        let mut reg = MetricRegistry::new();
        for (path, counter) in [
            ("serve/request_received", &self.received),
            ("serve/request_coalesced", &self.coalesced),
            ("serve/request_shed", &self.shed),
            ("serve/request_done", &self.done),
            ("serve/cache_warm_hits", &self.warm_hits),
            ("serve/cache_mem_hits", &self.mem_hits),
            ("serve/cache_disk_hits", &self.disk_hits),
            ("serve/cold_computes", &self.cold_computes),
            ("serve/deadline_expired", &self.deadline_expired),
            ("serve/errors", &self.errors),
            ("serve/flight_retries", &self.flight_retries),
            ("serve/retry_after_ms", &self.retry_after_ms),
            ("serve/service_time_us", &self.service_time_us),
            ("serve/conns_accepted", &self.conns_accepted),
            ("serve/conns_open", &self.conns_open),
            ("serve/keepalive_reuses", &self.keepalive_reuses),
            ("serve/pipelined_batches", &self.pipelined_batches),
            ("serve/eventloop_wakeups", &self.eventloop_wakeups),
            ("serve/body_rejected", &self.body_rejected),
            ("stream/sessions_opened", &self.stream_sessions),
            ("stream/sessions_expired", &self.stream_sessions_expired),
            ("stream/sessions_open", &self.stream_sessions_open),
            ("stream/chunks", &self.stream_chunks),
            ("stream/accesses", &self.stream_accesses),
            ("stream/bytes_in", &self.stream_bytes),
            ("stream/rejected", &self.stream_rejected),
            ("stream/snapshots", &self.stream_snapshots),
        ] {
            reg.add(path, counter.load(Ordering::Relaxed));
        }
        reg
    }

    /// The `GET /metrics` body.
    pub fn text(&self) -> String {
        self.registry().to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_every_counter_as_registry_lines() {
        let m = ServeMetrics::new();
        ServeMetrics::bump(&m.received);
        ServeMetrics::bump(&m.received);
        ServeMetrics::bump(&m.warm_hits);
        let text = m.text();
        assert!(text.contains("serve/request_received = 2"));
        assert!(text.contains("serve/cache_warm_hits = 1"));
        assert!(text.contains("serve/request_shed = 0"));
        assert_eq!(m.registry().get("serve/request_received"), 2);
        assert_eq!(m.registry().sum_prefix("serve"), 3);
    }
}
