//! HDR-style latency histogram: log-linear µs buckets, mergeable
//! across client threads.
//!
//! Values land in buckets whose width doubles every power of two but
//! is subdivided into [`SUB_BUCKETS`] linear steps — constant ~1.6%
//! relative resolution across nine orders of magnitude in a few KB,
//! the classic HdrHistogram layout. Quantiles interpolate within the
//! winning bucket, so p50/p99 are smooth even at low counts. No
//! atomics: each load-generator thread owns a histogram and the
//! coordinator [`merge`](LatencyHistogram::merge)s after the run —
//! recording stays a handful of integer ops on the timing path.

/// Linear sub-buckets per power-of-two range (64 ⇒ ≤ 1/64 ≈ 1.6%
/// relative error).
const SUB_BUCKETS: usize = 64;
/// Power-of-two ranges covered: values up to 2^RANGES × SUB_BUCKETS µs
/// (≈ 2.3 hours) before clamping into the last bucket.
const RANGES: usize = 27;

/// A fixed-size log-linear histogram of microsecond latencies.
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    max_us: u64,
    min_us: u64,
    sum_us: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0u64; SUB_BUCKETS * (RANGES + 1)],
            total: 0,
            max_us: 0,
            min_us: u64::MAX,
            sum_us: 0,
        }
    }

    /// Bucket index for a value: values below [`SUB_BUCKETS`] map
    /// linearly (exact), above that each power-of-two range splits
    /// into [`SUB_BUCKETS`] equal slices.
    fn index(value_us: u64) -> usize {
        if value_us < SUB_BUCKETS as u64 {
            return value_us as usize;
        }
        let range =
            (63 - value_us.leading_zeros() as usize) - (SUB_BUCKETS.trailing_zeros() as usize - 1);
        let range = range.min(RANGES);
        let sub = (value_us >> range) as usize - SUB_BUCKETS / 2;
        // range 1 starts right after the linear section; each range
        // contributes SUB_BUCKETS/2 new buckets.
        SUB_BUCKETS + (range - 1) * (SUB_BUCKETS / 2) + sub.min(SUB_BUCKETS / 2 - 1)
    }

    /// Lowest value (µs) that would land in bucket `i` — the
    /// interpolation anchor for quantiles.
    fn bucket_floor(i: usize) -> u64 {
        if i < SUB_BUCKETS {
            return i as u64;
        }
        let range = (i - SUB_BUCKETS) / (SUB_BUCKETS / 2) + 1;
        let sub = (i - SUB_BUCKETS) % (SUB_BUCKETS / 2) + SUB_BUCKETS / 2;
        (sub as u64) << range
    }

    /// Width (µs) of bucket `i`.
    fn bucket_width(i: usize) -> u64 {
        if i < SUB_BUCKETS {
            return 1;
        }
        let range = (i - SUB_BUCKETS) / (SUB_BUCKETS / 2) + 1;
        1u64 << range
    }

    /// Records one latency sample.
    pub fn record(&mut self, value_us: u64) {
        let i = Self::index(value_us).min(self.counts.len() - 1);
        self.counts[i] += 1;
        self.total += 1;
        self.sum_us = self.sum_us.saturating_add(value_us);
        self.max_us = self.max_us.max(value_us);
        self.min_us = self.min_us.min(value_us);
    }

    /// Folds another histogram (e.g. a worker thread's) into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum_us = self.sum_us.saturating_add(other.sum_us);
        self.max_us = self.max_us.max(other.max_us);
        self.min_us = self.min_us.min(other.min_us);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Largest recorded value, µs (0 when empty).
    pub fn max_us(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.max_us
        }
    }

    /// Smallest recorded value, µs (0 when empty).
    pub fn min_us(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min_us
        }
    }

    /// Mean of recorded values, µs.
    pub fn mean_us(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.total as f64
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) in µs, linearly interpolated
    /// inside the winning bucket and clamped to the observed max.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let into = rank - seen; // 1 ..= c
                let est = Self::bucket_floor(i)
                    + (Self::bucket_width(i) * into)
                        .div_ceil(c.max(1))
                        .saturating_sub(1);
                return est.clamp(self.min_us, self.max_us);
            }
            seen += c;
        }
        self.max_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in [0u64, 1, 7, 42, 63] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min_us(), 0);
        assert_eq!(h.max_us(), 63);
        assert_eq!(h.quantile_us(0.0), 0);
        assert_eq!(h.quantile_us(1.0), 63);
    }

    #[test]
    fn quantiles_hold_relative_resolution_across_ranges() {
        let mut h = LatencyHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v * 10); // 10 µs .. 100 ms, uniform
        }
        for (q, expect) in [(0.5, 50_000.0), (0.9, 90_000.0), (0.99, 99_000.0)] {
            let got = h.quantile_us(q) as f64;
            let rel = (got - expect).abs() / expect;
            assert!(rel < 0.02, "q{q}: got {got}, want ~{expect} (rel {rel:.4})");
        }
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for v in 0..1000u64 {
            let v = v * v % 7919;
            if v % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.max_us(), whole.max_us());
        for q in [0.1, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.quantile_us(q), whole.quantile_us(q));
        }
    }

    #[test]
    fn huge_values_clamp_instead_of_panicking() {
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        h.record(3);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max_us(), u64::MAX);
        assert!(h.quantile_us(1.0) >= 3);
    }
}
