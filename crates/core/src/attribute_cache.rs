//! The Attribute Cache (Fig. 8): a Primitive Buffer over an Attribute
//! Buffer, with OPT replacement and write bypass.
//!
//! * The **Primitive Buffer** is set-associative over primitive IDs
//!   (XOR-based set index \[12\]). Each line: valid / lock / dirty bits,
//!   tag, the OPT Number, and the Attribute Buffer Pointer (ABP) to the
//!   first attribute.
//! * The **Attribute Buffer** stores one 48-byte attribute per entry;
//!   a primitive's attributes form a linked list, and free entries form a
//!   free list. A primitive fits only if enough free entries exist.
//!
//! Replacement (§III.C.6): among *unlocked* lines of the set, evict the
//! one with the **greatest** OPT Number (used farthest in the future; a
//! primitive never used again carries [`TileRank::NEVER`], the greatest of
//! all). Locks pin primitives whose ABP sits in the Tile Fetcher output
//! queue until the Rasterizer consumes them (§III.C.3/5).
//!
//! Writes (§III.C.4): the Polygon List Builder writes each primitive
//! once. If the best victim's OPT Number is **greater** than the write's,
//! the victim is evicted and the write allocated; otherwise (including
//! equality) the write is **bypassed** to the L2.

use tcor_cache::Indexing;
use tcor_common::{AccessStats, PrimitiveId, TileRank};

/// Geometry and policy knobs of the Attribute Cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AttributeCacheConfig {
    /// Primitive Buffer associativity.
    pub ways: usize,
    /// Primitive Buffer lines (must be a multiple of `ways`).
    pub pb_lines: usize,
    /// Attribute Buffer entries (one 48-byte attribute each).
    pub ab_entries: usize,
    /// Set-index function over primitive IDs. The paper uses the
    /// XOR-based function of \[12\]; `Modulo` is the ablation.
    pub indexing: Indexing,
    /// Polygon-List-Builder write bypass (§III.C.4). Disabling it makes
    /// every write allocate (evicting the farthest-future line) — the
    /// ablation for design decision D2.
    pub write_bypass: bool,
}

impl AttributeCacheConfig {
    /// Splits a byte budget into the two structures the way the paper's
    /// zero-overhead argument implies: the budget buys `bytes / 64`
    /// attribute entries (48 B data + pointer/valid/lock overhead, which
    /// the removed per-line tags pay for), and one Primitive Buffer line
    /// per potential resident primitive (at the 1-attribute worst case).
    ///
    /// # Panics
    ///
    /// Panics if the budget is too small to hold `ways` primitives of one
    /// attribute each.
    pub fn from_budget(bytes: u64, ways: usize) -> Self {
        let ab_entries = (bytes / 64) as usize;
        let pb_lines = (ab_entries / ways).max(1) * ways;
        assert!(
            ab_entries >= ways,
            "attribute cache budget {bytes} too small"
        );
        AttributeCacheConfig {
            ways,
            pb_lines,
            ab_entries,
            indexing: Indexing::Xor,
            write_bypass: true,
        }
    }

    /// Returns the config with a different set-index function.
    pub fn with_indexing(mut self, indexing: Indexing) -> Self {
        self.indexing = indexing;
        self
    }

    /// Returns the config with write bypass enabled or disabled.
    pub fn with_write_bypass(mut self, on: bool) -> Self {
        self.write_bypass = on;
        self
    }

    /// Number of Primitive Buffer sets.
    pub fn num_sets(&self) -> usize {
        self.pb_lines / self.ways
    }
}

/// A primitive displaced from the Attribute Cache. If `dirty`, its
/// attributes must be written back to the L2 (the system driver issues
/// one write per attribute block).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EvictedPrim {
    /// The displaced primitive.
    pub prim: PrimitiveId,
    /// Whether its attributes were dirty (written by the Polygon List
    /// Builder and never yet flushed).
    pub dirty: bool,
    /// How many attributes it held.
    pub attr_count: u8,
}

/// Outcome of a Tile Fetcher read (§III.C.3).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReadResult {
    /// Present: line and first attribute locked, OPT Number updated, ABP
    /// pushed to the output queue.
    Hit,
    /// Absent: a line was reserved (evicting `evicted`, possibly several
    /// to free Attribute Buffer space); the driver fetches the attribute
    /// blocks from the L2.
    Miss {
        /// Primitives displaced to make room.
        evicted: Vec<EvictedPrim>,
    },
    /// No unlocked victim (or not enough unlockable space): the fetcher
    /// must wait for the Rasterizer to consume queued primitives and
    /// retry.
    Stalled,
}

/// Outcome of a Polygon List Builder write (§III.C.4).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WriteResult {
    /// Stored in the Attribute Cache (dirty), possibly evicting
    /// farther-future primitives.
    Allocated {
        /// Primitives displaced to make room.
        evicted: Vec<EvictedPrim>,
    },
    /// Every unlocked candidate will be used sooner than (or at the same
    /// tile as) this primitive: the write goes straight to the L2.
    Bypassed,
}

#[derive(Clone, Copy, Debug, Default)]
struct PbLine {
    valid: bool,
    lock: bool,
    dirty: bool,
    prim: PrimitiveId,
    opt: TileRank,
    abp: u32,
    attr_count: u8,
}

/// The Attribute Cache.
#[derive(Clone, Debug)]
pub struct AttributeCache {
    cfg: AttributeCacheConfig,
    lines: Vec<PbLine>,
    /// Attribute Buffer: next-entry links (the attribute payloads carry no
    /// information the simulator needs).
    ab_next: Vec<Option<u32>>,
    free: Vec<u32>,
    stats: AccessStats,
    locked_prims: u64,
    resident: usize,
    occ_samples: u64,
    occ_entries_sum: u64,
    occ_prims_sum: u64,
    stall_events: u64,
    /// Attribute blocks evicted dirty (each becomes one L2 write in the
    /// system driver), counted at the eviction site. Kept separate from
    /// `stats.writebacks` so the energy model's inputs are untouched.
    wb_blocks: u64,
    /// OPT self-check failures: a selected victim that was not the
    /// farthest-future eligible candidate (Hawkeye-style self-checking
    /// oracle; always 0 unless victim selection regresses).
    opt_violations: u64,
}

impl AttributeCache {
    /// Creates an empty Attribute Cache.
    pub fn new(cfg: AttributeCacheConfig) -> Self {
        assert!(cfg.ways > 0 && cfg.pb_lines.is_multiple_of(cfg.ways));
        AttributeCache {
            cfg,
            lines: vec![PbLine::default(); cfg.pb_lines],
            ab_next: vec![None; cfg.ab_entries],
            free: (0..cfg.ab_entries as u32).rev().collect(),
            stats: AccessStats::new(),
            locked_prims: 0,
            resident: 0,
            occ_samples: 0,
            occ_entries_sum: 0,
            occ_prims_sum: 0,
            stall_events: 0,
            wb_blocks: 0,
            opt_violations: 0,
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> &AttributeCacheConfig {
        &self.cfg
    }

    /// Accumulated statistics. Bypassed writes count in
    /// [`AccessStats::bypasses`], not as accesses.
    pub fn stats(&self) -> &AccessStats {
        &self.stats
    }

    /// Free Attribute Buffer entries.
    pub fn free_entries(&self) -> usize {
        self.free.len()
    }

    /// Resident (valid) primitives.
    pub fn resident_primitives(&self) -> usize {
        self.resident
    }

    /// Mean Attribute Buffer occupancy over the accesses so far, as a
    /// fraction of `ab_entries` — evidence for the paper's zero-overhead
    /// sizing argument (§III.C.2).
    pub fn avg_buffer_utilization(&self) -> f64 {
        if self.occ_samples == 0 {
            0.0
        } else {
            self.occ_entries_sum as f64 / (self.occ_samples as f64 * self.cfg.ab_entries as f64)
        }
    }

    /// Mean Primitive Buffer occupancy over the accesses so far, as a
    /// fraction of `pb_lines`.
    pub fn avg_line_utilization(&self) -> f64 {
        if self.occ_samples == 0 {
            0.0
        } else {
            self.occ_prims_sum as f64 / (self.occ_samples as f64 * self.cfg.pb_lines as f64)
        }
    }

    /// Read attempts that stalled on locks (the fetcher had to wait for
    /// the Rasterizer).
    pub fn stall_events(&self) -> u64 {
        self.stall_events
    }

    /// Attribute blocks evicted dirty, counted at the eviction site.
    pub fn writeback_blocks(&self) -> u64 {
        self.wb_blocks
    }

    /// OPT self-check failures (0 in a correct run).
    pub fn opt_violations(&self) -> u64 {
        self.opt_violations
    }

    fn sample_occupancy(&mut self) {
        self.occ_samples += 1;
        self.occ_entries_sum += (self.cfg.ab_entries - self.free.len()) as u64;
        self.occ_prims_sum += self.resident as u64;
    }

    /// Number of currently locked primitives.
    pub fn locked_primitives(&self) -> u64 {
        self.locked_prims
    }

    fn set_of(&self, prim: PrimitiveId) -> usize {
        self.cfg
            .indexing
            .set_of(prim.0 as u64, self.cfg.num_sets() as u64) as usize
    }

    fn set_range(&self, set: usize) -> std::ops::Range<usize> {
        set * self.cfg.ways..(set + 1) * self.cfg.ways
    }

    fn find(&self, prim: PrimitiveId) -> Option<usize> {
        let set = self.set_of(prim);
        self.set_range(set)
            .find(|&i| self.lines[i].valid && self.lines[i].prim == prim)
    }

    fn alloc_chain(&mut self, count: u8) -> u32 {
        debug_assert!(self.free.len() >= count as usize);
        let head = self.free.pop().expect("space checked");
        let mut cur = head;
        for _ in 1..count {
            let nxt = self.free.pop().expect("space checked");
            self.ab_next[cur as usize] = Some(nxt);
            cur = nxt;
        }
        self.ab_next[cur as usize] = None;
        head
    }

    fn free_chain(&mut self, head: u32) {
        let mut cur = Some(head);
        while let Some(i) = cur {
            cur = self.ab_next[i as usize].take();
            self.free.push(i);
        }
    }

    fn evict_line(&mut self, idx: usize) -> EvictedPrim {
        let line = self.lines[idx];
        debug_assert!(line.valid && !line.lock);
        if line.dirty {
            self.wb_blocks += line.attr_count as u64;
        }
        self.free_chain(line.abp);
        self.lines[idx] = PbLine::default();
        self.resident -= 1;
        EvictedPrim {
            prim: line.prim,
            dirty: line.dirty,
            attr_count: line.attr_count,
        }
    }

    /// The unlocked line in `set` with the greatest OPT Number, if any.
    fn best_victim(&self, set: usize) -> Option<usize> {
        self.set_range(set)
            .filter(|&i| self.lines[i].valid && !self.lines[i].lock)
            .max_by_key(|&i| self.lines[i].opt)
    }

    /// OPT self-check over the set-scoped eviction: counts a violation if
    /// an unlocked survivor of `set` will be used farther in the future
    /// than the chosen victim. Re-derived with an independent scan, not
    /// the selection code — call *before* `evict_line`.
    fn audit_set_victim(&mut self, set: usize, chosen: usize) {
        let chosen_opt = self.lines[chosen].opt;
        let violated = self.set_range(set).any(|i| {
            i != chosen
                && self.lines[i].valid
                && !self.lines[i].lock
                && self.lines[i].opt > chosen_opt
        });
        if violated {
            self.opt_violations += 1;
        }
    }

    /// OPT self-check over a cache-wide eviction. `floor` restricts the
    /// eligible candidates (the write path may only evict lines strictly
    /// farther-future than the written primitive).
    fn audit_global_victim(&mut self, chosen: usize, floor: Option<TileRank>) {
        let chosen_opt = self.lines[chosen].opt;
        let violated = (0..self.lines.len()).any(|i| {
            i != chosen
                && self.lines[i].valid
                && !self.lines[i].lock
                && floor.is_none_or(|f| self.lines[i].opt > f)
                && self.lines[i].opt > chosen_opt
        });
        if violated {
            self.opt_violations += 1;
        }
    }

    /// Frees Attribute Buffer space by evicting unlocked primitives
    /// cache-wide in OPT order until `needed` entries are free. Returns
    /// `false` (rolling nothing back — evicted lines were the
    /// farthest-future anyway) if locked lines make it impossible.
    fn make_space(&mut self, needed: usize, evicted: &mut Vec<EvictedPrim>) -> bool {
        while self.free.len() < needed {
            let victim = (0..self.lines.len())
                .filter(|&i| self.lines[i].valid && !self.lines[i].lock)
                .max_by_key(|&i| self.lines[i].opt);
            match victim {
                Some(i) => {
                    self.audit_global_victim(i, None);
                    evicted.push(self.evict_line(i));
                }
                None => return false,
            }
        }
        true
    }

    /// Tile Fetcher read of `prim` (which has `attr_count` attributes) on
    /// behalf of the tile whose PMD supplied `opt_number` (§III.C.3).
    ///
    /// On a hit the line is locked and its OPT Number updated from the
    /// request. On a miss a line is reserved (and locked): the caller
    /// fetches the attribute blocks from the L2 and, when they arrive,
    /// the primitive is resident. `Stalled` means every candidate is
    /// locked; the caller must let the Rasterizer drain and retry.
    pub fn read(&mut self, prim: PrimitiveId, attr_count: u8, opt_number: TileRank) -> ReadResult {
        // OPT Numbers are a 12-bit hardware field (§III.C): saturate the
        // incoming rank exactly where hardware latches it.
        let opt_number = opt_number.saturated();
        self.sample_occupancy();
        if let Some(idx) = self.find(prim) {
            self.stats.record_read(true);
            let line = &mut self.lines[idx];
            if !line.lock {
                line.lock = true;
                self.locked_prims += 1;
            }
            line.opt = opt_number;
            self.stats.probes += 1;
            return ReadResult::Hit;
        }

        // Miss path: reserve a Primitive Buffer line. Check feasibility
        // *before* mutating so a stall leaves the cache untouched.
        let set = self.set_of(prim);
        let empty = self.set_range(set).find(|&i| !self.lines[i].valid);
        let victim = self.best_victim(set);
        if empty.is_none() && victim.is_none() {
            self.stall_events += 1;
            return ReadResult::Stalled; // every line in the set is locked
        }
        let reclaimable: usize = (0..self.lines.len())
            .filter(|&i| self.lines[i].valid && !self.lines[i].lock)
            .map(|i| self.lines[i].attr_count as usize)
            .sum();
        if self.free.len() + reclaimable < attr_count as usize {
            self.stall_events += 1;
            return ReadResult::Stalled; // locked primitives hold the buffer
        }

        let mut evicted = Vec::new();
        let line_idx = match empty {
            Some(i) => i,
            None => {
                let v = victim.expect("checked above");
                self.audit_set_victim(set, v);
                evicted.push(self.evict_line(v));
                v
            }
        };
        // Ensure Attribute Buffer space (§III.C.3 Miss: "In case of a
        // dearth of space, more primitives are evicted using OPT").
        let ok = self.make_space(attr_count as usize, &mut evicted);
        debug_assert!(ok, "feasibility was checked");
        self.stats.record_read(false);
        let abp = self.alloc_chain(attr_count);
        self.lines[line_idx] = PbLine {
            valid: true,
            lock: true,
            dirty: false,
            prim,
            opt: opt_number,
            abp,
            attr_count,
        };
        self.resident += 1;
        self.locked_prims += 1;
        self.stats.probes += 1;
        ReadResult::Miss { evicted }
    }

    /// Polygon List Builder write of a new primitive whose first use is
    /// the tile at rank `first_use` (§III.C.4).
    pub fn write(&mut self, prim: PrimitiveId, attr_count: u8, first_use: TileRank) -> WriteResult {
        // Same 12-bit saturation as the read path (§III.C).
        let first_use = first_use.saturated();
        self.sample_occupancy();
        debug_assert!(
            self.find(prim).is_none(),
            "each primitive is written exactly once"
        );
        let set = self.set_of(prim);
        let empty = self.set_range(set).find(|&i| !self.lines[i].valid);

        if !self.cfg.write_bypass {
            // Ablation: no bypass — allocate like a read (evict the
            // farthest-future unlocked line unconditionally), falling
            // back to bypass only when locks leave no room.
            return match self.read_style_reserve(prim, attr_count, first_use) {
                Some(evicted) => {
                    self.stats.probes += 1;
                    WriteResult::Allocated { evicted }
                }
                None => {
                    self.stats.bypasses += 1;
                    WriteResult::Bypassed
                }
            };
        }

        // Feasibility of Attribute Buffer space: free entries plus entries
        // held by unlocked primitives that are strictly farther-future
        // than this write (only those may be evicted on the write path).
        let reclaimable: usize = (0..self.lines.len())
            .filter(|&i| {
                self.lines[i].valid && !self.lines[i].lock && self.lines[i].opt > first_use
            })
            .map(|i| self.lines[i].attr_count as usize)
            .sum();
        let space_feasible = self.free.len() + reclaimable >= attr_count as usize;

        let line_idx = match empty {
            Some(i) if space_feasible => i,
            _ => {
                // Full set (or not enough space): compare with the best
                // victim's OPT Number.
                let Some(victim) = self.best_victim(set) else {
                    self.stats.bypasses += 1;
                    return WriteResult::Bypassed;
                };
                if empty.is_none() && self.lines[victim].opt <= first_use {
                    // The victim (and so every line in the set) is used no
                    // later than this primitive: bypass. Equality also
                    // bypasses (§III.C.4).
                    self.stats.bypasses += 1;
                    return WriteResult::Bypassed;
                }
                if !space_feasible {
                    self.stats.bypasses += 1;
                    return WriteResult::Bypassed;
                }
                match empty {
                    Some(i) => i,
                    None => victim,
                }
            }
        };

        let mut evicted = Vec::new();
        if self.lines[line_idx].valid {
            self.audit_set_victim(set, line_idx);
            evicted.push(self.evict_line(line_idx));
        }
        // Free space evicting only strictly-farther-future primitives.
        while self.free.len() < attr_count as usize {
            let victim = (0..self.lines.len())
                .filter(|&i| {
                    self.lines[i].valid && !self.lines[i].lock && self.lines[i].opt > first_use
                })
                .max_by_key(|&i| self.lines[i].opt)
                .expect("feasibility checked");
            self.audit_global_victim(victim, Some(first_use));
            evicted.push(self.evict_line(victim));
        }
        self.stats.record_write(false); // every PLB write is a (compulsory) miss
        let abp = self.alloc_chain(attr_count);
        self.lines[line_idx] = PbLine {
            valid: true,
            lock: false,
            dirty: true,
            prim,
            opt: first_use,
            abp,
            attr_count,
        };
        self.resident += 1;
        self.stats.probes += 1;
        WriteResult::Allocated { evicted }
    }

    /// Shared allocation path for the no-bypass ablation: reserve a line
    /// for `prim` evicting farthest-future unlocked lines; returns `None`
    /// when locks make it impossible.
    fn read_style_reserve(
        &mut self,
        prim: PrimitiveId,
        attr_count: u8,
        opt: TileRank,
    ) -> Option<Vec<EvictedPrim>> {
        let set = self.set_of(prim);
        let empty = self.set_range(set).find(|&i| !self.lines[i].valid);
        let victim = self.best_victim(set);
        if empty.is_none() && victim.is_none() {
            return None;
        }
        let reclaimable: usize = (0..self.lines.len())
            .filter(|&i| self.lines[i].valid && !self.lines[i].lock)
            .map(|i| self.lines[i].attr_count as usize)
            .sum();
        if self.free.len() + reclaimable < attr_count as usize {
            return None;
        }
        let mut evicted = Vec::new();
        let line_idx = match empty {
            Some(i) => i,
            None => {
                let v = victim.expect("checked above");
                self.audit_set_victim(set, v);
                evicted.push(self.evict_line(v));
                v
            }
        };
        let ok = self.make_space(attr_count as usize, &mut evicted);
        debug_assert!(ok, "feasibility was checked");
        self.stats.record_write(false);
        let abp = self.alloc_chain(attr_count);
        self.lines[line_idx] = PbLine {
            valid: true,
            lock: false,
            dirty: true,
            prim,
            opt,
            abp,
            attr_count,
        };
        self.resident += 1;
        Some(evicted)
    }

    /// Rasterizer consumed `prim`'s attributes: unlock its line and
    /// attribute chain (§III.C.3 "Rasterizer Read"). Idempotent; a
    /// primitive already evicted (only possible when unlocked) is a no-op.
    pub fn unlock(&mut self, prim: PrimitiveId) {
        if let Some(idx) = self.find(prim) {
            if self.lines[idx].lock {
                self.lines[idx].lock = false;
                self.locked_prims -= 1;
            }
        }
    }

    /// Whether `prim` is resident.
    pub fn contains(&self, prim: PrimitiveId) -> bool {
        self.find(prim).is_some()
    }

    /// The stored OPT Number of a resident primitive.
    pub fn peek_opt(&self, prim: PrimitiveId) -> Option<TileRank> {
        self.find(prim).map(|i| self.lines[i].opt)
    }

    /// End of frame: evicts every resident primitive (unlocking first),
    /// returning them for dirty write-back accounting.
    pub fn drain(&mut self) -> Vec<EvictedPrim> {
        let mut out = Vec::new();
        for i in 0..self.lines.len() {
            if self.lines[i].valid {
                if self.lines[i].lock {
                    self.lines[i].lock = false;
                    self.locked_prims -= 1;
                }
                out.push(self.evict_line(i));
            }
        }
        debug_assert_eq!(self.free.len(), self.cfg.ab_entries);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(ways: usize, pb_lines: usize, ab_entries: usize) -> AttributeCache {
        AttributeCache::new(AttributeCacheConfig {
            ways,
            pb_lines,
            ab_entries,
            indexing: Indexing::Xor,
            write_bypass: true,
        })
    }

    /// A fully-associative 2-primitive cache as in the paper's worked
    /// example (Fig. 9/10): 2 lines, 6 attribute entries (3 each).
    fn example_cache() -> AttributeCache {
        cache(2, 2, 6)
    }

    #[test]
    fn write_allocates_until_full() {
        let mut c = example_cache();
        assert!(matches!(
            c.write(PrimitiveId(0), 3, TileRank(0)),
            WriteResult::Allocated { .. }
        ));
        assert!(matches!(
            c.write(PrimitiveId(1), 3, TileRank(1)),
            WriteResult::Allocated { .. }
        ));
        assert_eq!(c.resident_primitives(), 2);
        assert_eq!(c.free_entries(), 0);
    }

    /// The paper's example, write 3 (Fig. 10, OPT side): prim 2 has first
    /// use at tile 3 (rank 3); residents have OPT numbers 0 and 1 — all
    /// sooner — so the write is bypassed.
    #[test]
    fn write_bypasses_when_residents_are_nearer_future() {
        let mut c = example_cache();
        c.write(PrimitiveId(0), 3, TileRank(0));
        c.write(PrimitiveId(1), 3, TileRank(1));
        assert_eq!(
            c.write(PrimitiveId(2), 3, TileRank(3)),
            WriteResult::Bypassed
        );
        assert!(c.contains(PrimitiveId(0)));
        assert!(c.contains(PrimitiveId(1)));
        assert_eq!(c.stats().bypasses, 1);
    }

    #[test]
    fn write_evicts_farther_future_resident() {
        let mut c = example_cache();
        c.write(PrimitiveId(0), 3, TileRank(5));
        c.write(PrimitiveId(1), 3, TileRank(9));
        // New primitive first used at rank 2: evict prim 1 (rank 9).
        match c.write(PrimitiveId(2), 3, TileRank(2)) {
            WriteResult::Allocated { evicted } => {
                assert_eq!(evicted.len(), 1);
                assert_eq!(evicted[0].prim, PrimitiveId(1));
                assert!(evicted[0].dirty);
            }
            other => panic!("expected allocation, got {other:?}"),
        }
        assert!(c.contains(PrimitiveId(2)));
        assert!(!c.contains(PrimitiveId(1)));
    }

    #[test]
    fn equal_opt_number_bypasses() {
        let mut c = example_cache();
        c.write(PrimitiveId(0), 3, TileRank(4));
        c.write(PrimitiveId(1), 3, TileRank(4));
        assert_eq!(
            c.write(PrimitiveId(2), 3, TileRank(4)),
            WriteResult::Bypassed
        );
    }

    #[test]
    fn read_hit_locks_and_updates_opt() {
        let mut c = example_cache();
        c.write(PrimitiveId(0), 3, TileRank(0));
        assert_eq!(c.read(PrimitiveId(0), 3, TileRank(3)), ReadResult::Hit);
        assert_eq!(c.peek_opt(PrimitiveId(0)), Some(TileRank(3)));
        assert_eq!(c.locked_primitives(), 1);
        assert_eq!(c.stats().read_hits, 1);
    }

    #[test]
    fn read_miss_reserves_and_can_evict() {
        let mut c = example_cache();
        c.write(PrimitiveId(0), 3, TileRank(7));
        c.write(PrimitiveId(1), 3, TileRank(8));
        // Reading prim 2 (next use rank 9): must evict one of the others.
        match c.read(PrimitiveId(2), 3, TileRank(9)) {
            ReadResult::Miss { evicted } => {
                assert_eq!(evicted.len(), 1);
                assert_eq!(evicted[0].prim, PrimitiveId(1)); // farthest (8)
            }
            other => panic!("expected miss, got {other:?}"),
        }
        assert!(c.contains(PrimitiveId(2)));
    }

    #[test]
    fn locked_lines_are_not_victims() {
        let mut c = example_cache();
        c.write(PrimitiveId(0), 3, TileRank(7));
        c.write(PrimitiveId(1), 3, TileRank(8));
        assert_eq!(c.read(PrimitiveId(0), 3, TileRank(9)), ReadResult::Hit); // locks prim 0
        assert_eq!(c.read(PrimitiveId(1), 3, TileRank(9)), ReadResult::Hit); // locks prim 1
                                                                             // Everything locked: a read miss must stall.
        assert_eq!(c.read(PrimitiveId(2), 3, TileRank(10)), ReadResult::Stalled);
        c.unlock(PrimitiveId(0));
        // Now prim 0 is evictable.
        assert!(matches!(
            c.read(PrimitiveId(2), 3, TileRank(10)),
            ReadResult::Miss { .. }
        ));
    }

    #[test]
    fn variable_attr_counts_share_the_buffer() {
        // 4 lines, 8 entries: a 5-attribute primitive plus a 3-attribute
        // one exactly fill the buffer.
        let mut c = cache(4, 4, 8);
        assert!(matches!(
            c.write(PrimitiveId(0), 5, TileRank(0)),
            WriteResult::Allocated { .. }
        ));
        assert!(matches!(
            c.write(PrimitiveId(1), 3, TileRank(1)),
            WriteResult::Allocated { .. }
        ));
        assert_eq!(c.free_entries(), 0);
        // A third one first-used later than both residents: bypass.
        assert_eq!(
            c.write(PrimitiveId(2), 1, TileRank(2)),
            WriteResult::Bypassed
        );
        // First-used EARLIER than prim 0 (rank 0)? No line is
        // strictly-later than rank 0 except... prim 1 (rank 1) is. Evicting
        // prim 1 frees 3 entries for a 2-attribute newcomer at rank 0.
        // (Write-path evictions only take strictly-farther lines.)
        match c.write(PrimitiveId(3), 2, TileRank(0)) {
            WriteResult::Allocated { evicted } => {
                assert!(evicted.iter().any(|e| e.prim == PrimitiveId(1)));
            }
            other => panic!("expected allocation, got {other:?}"),
        }
    }

    #[test]
    fn free_list_never_leaks() {
        let mut c = cache(2, 8, 24);
        // Churn: write, read, evict many primitives with varied sizes.
        for i in 0..200u32 {
            let attrs = 1 + (i % 5) as u8;
            let _ = c.write(PrimitiveId(i), attrs, TileRank(i % 50));
            if i % 3 == 0 {
                let _ = c.read(
                    PrimitiveId(i / 2),
                    1 + ((i / 2) % 5) as u8,
                    TileRank(i % 50 + 1),
                );
            }
            if i % 4 == 0 {
                c.unlock(PrimitiveId(i / 2));
            }
        }
        // Every entry is either free or owned by exactly one resident.
        let owned: usize = (0..c.lines.len())
            .filter(|&i| c.lines[i].valid)
            .map(|i| c.lines[i].attr_count as usize)
            .sum();
        assert_eq!(owned + c.free_entries(), c.config().ab_entries);
        let drained = c.drain();
        assert_eq!(c.free_entries(), c.config().ab_entries);
        assert_eq!(
            drained.iter().map(|e| e.attr_count as usize).sum::<usize>(),
            owned
        );
    }

    #[test]
    fn drain_reports_dirty_lines() {
        let mut c = example_cache();
        c.write(PrimitiveId(0), 3, TileRank(0)); // dirty
        c.read(PrimitiveId(1), 3, TileRank(1)); // miss fill: clean
        let drained = c.drain();
        assert_eq!(drained.len(), 2);
        let by_prim = |p: u32| drained.iter().find(|e| e.prim == PrimitiveId(p)).unwrap();
        assert!(by_prim(0).dirty);
        assert!(!by_prim(1).dirty);
    }

    #[test]
    fn probes_count_only_classified_accesses() {
        // Stalls and bypasses record neither hit nor miss — probes must
        // match the classified accesses exactly (the audit invariant).
        let mut c = example_cache();
        c.write(PrimitiveId(0), 3, TileRank(0)); // allocated (write miss)
        c.write(PrimitiveId(1), 3, TileRank(1)); // allocated
        c.write(PrimitiveId(2), 3, TileRank(3)); // bypassed: no probe
        assert_eq!(c.read(PrimitiveId(0), 3, TileRank(2)), ReadResult::Hit);
        assert_eq!(c.read(PrimitiveId(1), 3, TileRank(2)), ReadResult::Hit);
        assert_eq!(c.read(PrimitiveId(3), 3, TileRank(5)), ReadResult::Stalled); // no probe
        let s = c.stats();
        assert_eq!(s.probes, s.hits() + s.misses());
        assert_eq!(s.probes, 4);
        assert_eq!(s.bypasses, 1);
        assert_eq!(c.stall_events(), 1);
    }

    #[test]
    fn dirty_evictions_count_writeback_blocks() {
        let mut c = example_cache();
        c.write(PrimitiveId(0), 3, TileRank(5)); // dirty
        c.write(PrimitiveId(1), 3, TileRank(9)); // dirty
                                                 // Rank-2 write evicts prim 1 (3 dirty attribute blocks).
        c.write(PrimitiveId(2), 3, TileRank(2));
        assert_eq!(c.writeback_blocks(), 3);
        // Clean (read-filled) evictions add nothing.
        c.read(PrimitiveId(0), 3, TileRank(3));
        c.unlock(PrimitiveId(0));
        let drained = c.drain();
        let dirty_attrs: u64 = drained
            .iter()
            .filter(|e| e.dirty)
            .map(|e| e.attr_count as u64)
            .sum();
        assert_eq!(c.writeback_blocks(), 3 + dirty_attrs);
    }

    #[test]
    fn opt_self_check_is_clean_under_churn() {
        let mut c = cache(2, 8, 24);
        for i in 0..500u32 {
            let attrs = 1 + (i % 5) as u8;
            let _ = c.write(PrimitiveId(i), attrs, TileRank(i % 40));
            if i % 2 == 0 {
                let _ = c.read(
                    PrimitiveId(i / 2),
                    1 + ((i / 2) % 5) as u8,
                    TileRank(i % 40 + 1),
                );
            }
            if i % 3 == 0 {
                c.unlock(PrimitiveId(i / 3));
            }
        }
        assert_eq!(c.opt_violations(), 0);
    }

    #[test]
    fn opt_numbers_saturate_at_twelve_bits() {
        let mut c = example_cache();
        // A first use past the 12-bit field stores as 4095, exactly like
        // a NEVER rank: the two become indistinguishable, as in hardware.
        c.write(PrimitiveId(0), 3, TileRank(5000));
        assert_eq!(c.peek_opt(PrimitiveId(0)), Some(TileRank(4095)));
        c.read(PrimitiveId(0), 3, TileRank::NEVER);
        assert_eq!(c.peek_opt(PrimitiveId(0)), Some(TileRank(4095)));
        // Saturated residents still lose to nearer-future newcomers…
        c.unlock(PrimitiveId(0));
        c.write(PrimitiveId(1), 3, TileRank(4094));
        match c.write(PrimitiveId(2), 3, TileRank(10)) {
            WriteResult::Allocated { evicted } => {
                assert_eq!(
                    evicted[0].prim,
                    PrimitiveId(0),
                    "farthest (4095) goes first"
                );
            }
            other => panic!("expected allocation, got {other:?}"),
        }
    }

    #[test]
    fn budget_constructor_is_consistent() {
        let cfg = AttributeCacheConfig::from_budget(48 << 10, 4);
        assert_eq!(cfg.ab_entries, 768);
        assert_eq!(cfg.pb_lines % 4, 0);
        assert!(cfg.num_sets() > 0);
        let c = AttributeCache::new(cfg);
        assert_eq!(c.free_entries(), 768);
    }
}
