//! # tcor
//!
//! The paper's contribution: **TCOR — a Tile Cache with Optimal
//! Replacement** (§III), plus the baseline Tile Cache it is evaluated
//! against and full-system drivers that replay identical Tiling Engine
//! access streams through either organization.
//!
//! ## The TCOR organization (Fig. 7, Fig. 8)
//!
//! The unified baseline Tile Cache is split in two:
//!
//! * [`ListCache`] — a conventional LRU cache in front of PB-Lists, laid
//!   out with TCOR's interleaved scheme (Fig. 6) so consecutive tiles map
//!   to consecutive sets.
//! * [`AttributeCache`] — a decoupled, primitive-granularity cache in
//!   front of PB-Attributes: a **Primitive Buffer** (tags, lock/dirty
//!   bits, the 12-bit OPT Number, and a pointer into the attribute
//!   storage) over an **Attribute Buffer** (a linked free-list pool of
//!   48-byte attribute entries). Replacement is OPT: evict the unlocked
//!   line whose next use (OPT Number) lies farthest in the tile
//!   traversal; Polygon List Builder writes that would evict
//!   nearer-future lines are **bypassed** to the L2 instead (§III.C.4).
//!
//! ## Systems
//!
//! [`BaselineSystem`] and [`TcorSystem`] run one frame end to end —
//! geometry, binning, both Tiling Engine phases, raster-side traffic —
//! over a shared [`tcor_mem::MemoryHierarchy`], and produce a
//! [`FrameReport`] with every counter the paper's Figures 14–24 plot.
//!
//! ```
//! use tcor::{SystemConfig, TcorSystem, BaselineSystem};
//! use tcor_gpu::{Scene, ScenePrimitive};
//! use tcor_common::Tri2;
//!
//! let scene: Scene = (0..64)
//!     .map(|i| ScenePrimitive {
//!         tri: Tri2::new(
//!             (i as f32 * 7.0 % 600.0, i as f32 * 13.0 % 400.0),
//!             (i as f32 * 7.0 % 600.0 + 40.0, i as f32 * 13.0 % 400.0),
//!             (i as f32 * 7.0 % 600.0, i as f32 * 13.0 % 400.0 + 40.0),
//!         ),
//!         attr_count: 3,
//!     })
//!     .collect();
//! let report = TcorSystem::new(SystemConfig::paper_tcor_64k()).run_frame(&scene);
//! let base = BaselineSystem::new(SystemConfig::paper_baseline_64k()).run_frame(&scene);
//! assert!(report.pb_l2_accesses() <= base.pb_l2_accesses());
//! ```

pub mod attribute_cache;
pub mod baseline;
pub mod list_cache;
pub mod report;
pub mod system;

pub use attribute_cache::{
    AttributeCache, AttributeCacheConfig, EvictedPrim, ReadResult, WriteResult,
};
pub use baseline::BaselineTileCache;
pub use list_cache::ListCache;
pub use report::{FrameReport, StructureActivity};
pub use system::{BaselineSession, BaselineSystem, SystemConfig, TcorSession, TcorSystem};
