//! Per-frame measurement report — every counter the paper's evaluation
//! figures plot.

use tcor_common::{AccessStats, MetricRegistry};
use tcor_mem::TrafficMatrix;
use tcor_pbuf::Region;

/// Activity of one on-chip SRAM structure (an L1 cache or the L2), as
//  input to the energy model.
#[derive(Clone, Debug)]
pub struct StructureActivity {
    /// Structure name ("tile$", "attr$", "L2"…).
    pub name: &'static str,
    /// Capacity in bytes **per instance** (drives per-access and leakage
    /// energy).
    pub size_bytes: u64,
    /// Physical copies (4 texture caches share one entry).
    pub instances: u32,
    /// Access counters, summed over instances.
    pub stats: AccessStats,
}

/// Everything measured over one simulated frame.
#[derive(Clone, Debug)]
pub struct FrameReport {
    /// Which system produced it ("baseline" / "tcor").
    pub system: &'static str,
    /// L1 structures and their activity (for the energy model).
    pub structures: Vec<StructureActivity>,
    /// L2-level statistics (hits/misses/writebacks).
    pub l2_stats: AccessStats,
    /// Traffic arriving at the L2, per region (Figures 14–15).
    pub l2_traffic: TrafficMatrix,
    /// Traffic reaching main memory, per region (Figures 16–19).
    pub mm_traffic: TrafficMatrix,
    /// Dirty L2 lines dropped dead without write-back (TCOR only).
    pub dead_drops: u64,
    /// Blocks the hierarchy actually wrote back to DRAM, counted at the
    /// disposal sites — the audit cross-checks
    /// `l2_stats.writebacks == l2_wb_blocks + dead_drops`.
    pub l2_wb_blocks: u64,
    /// Parameter-Buffer blocks filled from DRAM on L2 read misses,
    /// counted at the hierarchy's fill site — the audit cross-checks it
    /// against the DRAM model's own PB read traffic (PB bytes from DRAM
    /// == pb_fill_blocks × line size).
    pub pb_fill_blocks: u64,
    /// Attribute blocks the Attribute Cache evicted dirty (each becomes
    /// one L2 write), counted at its eviction site (TCOR only).
    pub attr_wb_blocks: u64,
    /// Attribute Cache OPT self-check failures: victims that were *not*
    /// the farthest-future unlocked candidate. Always 0 in a correct run
    /// (TCOR only).
    pub attr_opt_violations: u64,
    /// Tile Fetcher cycles (unbounded output queue, Figures 23–24).
    pub fetch_cycles: u64,
    /// Primitives the Tile Fetcher output (one per PMD consumed).
    pub prims_fetched: u64,
    /// Polygon List Builder cycles.
    pub plb_cycles: u64,
    /// Estimated Raster Pipeline cycles (shader-bound; 4 fragment
    /// processors, one instruction per cycle each).
    pub raster_cycles: f64,
    /// Tile-coupled Tiling/Raster cycles: Σ over tiles of
    /// max(fetch, raster) — the Tile Fetcher and Raster Pipeline overlap
    /// but each tile's rasterization cannot start before its primitives
    /// are fetched. Drives the FPS model.
    pub coupled_cycles: f64,
    /// Estimated fragments shaded (energy model).
    pub fragments: f64,
    /// Estimated shader instructions executed (energy model).
    pub shader_instructions: f64,
    /// Primitives binned.
    pub num_primitives: usize,
    /// Parameter Buffer footprint in bytes (lists + attributes).
    pub pb_footprint_bytes: u64,
    /// Mean Attribute Buffer occupancy (TCOR only; 0 for the baseline).
    pub attr_buffer_utilization: f64,
    /// Mean Primitive Buffer occupancy (TCOR only).
    pub attr_line_utilization: f64,
    /// Tile Fetcher stalls on Attribute Cache locks (TCOR only).
    pub attr_stalls: u64,
}

impl FrameReport {
    /// Parameter Buffer accesses to the L2 (Fig. 14–15 numerator).
    pub fn pb_l2_accesses(&self) -> u64 {
        self.l2_traffic.parameter_buffer().l2_total()
    }

    /// Parameter Buffer reads arriving at the L2.
    pub fn pb_l2_reads(&self) -> u64 {
        self.l2_traffic.parameter_buffer().l2_reads
    }

    /// Parameter Buffer writes arriving at the L2.
    pub fn pb_l2_writes(&self) -> u64 {
        self.l2_traffic.parameter_buffer().l2_writes
    }

    /// Parameter Buffer accesses reaching main memory (Fig. 16–17).
    pub fn pb_mm_accesses(&self) -> u64 {
        self.mm_traffic.parameter_buffer().mm_total()
    }

    /// Parameter Buffer reads reaching main memory.
    pub fn pb_mm_reads(&self) -> u64 {
        self.mm_traffic.parameter_buffer().mm_reads
    }

    /// Parameter Buffer writes reaching main memory.
    pub fn pb_mm_writes(&self) -> u64 {
        self.mm_traffic.parameter_buffer().mm_writes
    }

    /// Total main-memory accesses over all regions (Fig. 18–19).
    pub fn total_mm_accesses(&self) -> u64 {
        self.mm_traffic.total_mm_accesses()
    }

    /// Total L2 accesses over all regions.
    pub fn total_l2_accesses(&self) -> u64 {
        self.l2_traffic.total_l2_accesses()
    }

    /// Tile Fetcher primitives per cycle (Fig. 23–24; ≤ 1 by
    /// construction).
    pub fn primitives_per_cycle(&self) -> f64 {
        if self.fetch_cycles == 0 {
            0.0
        } else {
            self.prims_fetched as f64 / self.fetch_cycles as f64
        }
    }

    /// Looks up a structure's activity by name.
    pub fn structure(&self, name: &str) -> Option<&StructureActivity> {
        self.structures.iter().find(|s| s.name == name)
    }

    /// Assembles the uniform hierarchical metric view of this frame:
    /// every counter the report holds, published under
    /// `structure/…`, `l2/<region>/…` and `…/event/…` paths. This is
    /// the surface the audit layer and metric dumps read.
    pub fn metrics(&self) -> MetricRegistry {
        let mut reg = MetricRegistry::new();
        for s in &self.structures {
            reg.record_stats(s.name, &s.stats);
        }
        reg.record_stats("l2", &self.l2_stats);
        for region in Region::ALL {
            let label = region.label();
            let lt = self.l2_traffic.region(region);
            let mt = self.mm_traffic.region(region);
            for (event, n) in [
                ("l2_read", lt.l2_reads),
                ("l2_write", lt.l2_writes),
                ("mm_read", mt.mm_reads),
                ("mm_write", mt.mm_writes),
            ] {
                if n > 0 {
                    reg.add(&format!("traffic/{label}/{event}"), n);
                }
            }
        }
        reg.add("l2/event/dead_drop", self.dead_drops);
        reg.add("l2/event/wb_block", self.l2_wb_blocks);
        reg.add("l2/event/pb_fill", self.pb_fill_blocks);
        reg.add("attr$/event/wb_block", self.attr_wb_blocks);
        reg.add("attr$/event/opt_violation", self.attr_opt_violations);
        reg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_report() -> FrameReport {
        FrameReport {
            system: "test",
            structures: vec![StructureActivity {
                name: "tile$",
                size_bytes: 65536,
                instances: 1,
                stats: AccessStats::new(),
            }],
            l2_stats: AccessStats::new(),
            l2_traffic: TrafficMatrix::default(),
            mm_traffic: TrafficMatrix::default(),
            dead_drops: 0,
            l2_wb_blocks: 0,
            pb_fill_blocks: 0,
            attr_wb_blocks: 0,
            attr_opt_violations: 0,
            fetch_cycles: 0,
            prims_fetched: 0,
            plb_cycles: 0,
            raster_cycles: 0.0,
            coupled_cycles: 0.0,
            fragments: 0.0,
            shader_instructions: 0.0,
            num_primitives: 0,
            pb_footprint_bytes: 0,
            attr_buffer_utilization: 0.0,
            attr_line_utilization: 0.0,
            attr_stalls: 0,
        }
    }

    #[test]
    fn ppc_handles_zero_cycles() {
        assert_eq!(empty_report().primitives_per_cycle(), 0.0);
    }

    #[test]
    fn structure_lookup() {
        let r = empty_report();
        assert!(r.structure("tile$").is_some());
        assert!(r.structure("nope").is_none());
    }

    #[test]
    fn metrics_view_mirrors_report_counters() {
        let mut r = empty_report();
        r.structures[0].stats.record_read(true);
        r.l2_stats.record_read(false);
        r.l2_traffic.record_l2_read(tcor_pbuf::Region::PbLists);
        r.mm_traffic.record_mm_read(tcor_pbuf::Region::PbLists);
        r.dead_drops = 3;
        let m = r.metrics();
        assert_eq!(m.get("tile$/read_hit"), 1);
        assert_eq!(m.get("l2/read_miss"), 1);
        assert_eq!(m.get("traffic/PB-Lists/l2_read"), 1);
        assert_eq!(m.get("traffic/PB-Lists/mm_read"), 1);
        assert_eq!(m.get("l2/event/dead_drop"), 3);
    }

    #[test]
    fn pb_counters_derive_from_traffic() {
        let mut r = empty_report();
        r.l2_traffic.record_l2_read(tcor_pbuf::Region::PbLists);
        r.l2_traffic
            .record_l2_write(tcor_pbuf::Region::PbAttributes);
        r.mm_traffic
            .record_mm_write(tcor_pbuf::Region::PbAttributes);
        r.mm_traffic.record_mm_read(tcor_pbuf::Region::Textures);
        assert_eq!(r.pb_l2_accesses(), 2);
        assert_eq!(r.pb_l2_reads(), 1);
        assert_eq!(r.pb_mm_accesses(), 1);
        assert_eq!(r.total_mm_accesses(), 2);
    }
}
