//! The baseline unified Tile Cache (§II.C, Fig. 5).
//!
//! One conventional LRU cache serves both Parameter Buffer sections at
//! 64-byte-block granularity, over the baseline layouts: strided PB-Lists
//! (Fig. 3) and block-aligned PB-Attributes (Fig. 4). Reading a primitive
//! means reading each of its attribute blocks through this cache — the
//! per-line tags and block granularity TCOR's Attribute Cache does away
//! with.

use tcor_cache::policy::Lru;
use tcor_cache::{AccessKind, AccessMeta, Cache, Indexing};
use tcor_common::{AccessStats, BlockAddr, CacheParams, TileId};
use tcor_pbuf::{AttributesLayout, ListsLayout, ListsScheme};

/// One block-level access outcome the system driver must act on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TileCacheAccess {
    /// Whether the access hit.
    pub hit: bool,
    /// A dirty block displaced toward the L2, if any.
    pub writeback: Option<BlockAddr>,
    /// The block accessed.
    pub block: BlockAddr,
}

/// The baseline unified Tile Cache.
#[derive(Clone, Debug)]
pub struct BaselineTileCache {
    cache: Cache<Lru>,
    lists: ListsLayout,
    attrs: AttributesLayout,
}

impl BaselineTileCache {
    /// Creates the cache over the baseline layouts for a frame with
    /// `num_tiles` tiles and the given per-primitive attribute counts.
    pub fn new(params: CacheParams, num_tiles: u32, attr_counts: &[u8]) -> Self {
        BaselineTileCache {
            cache: Cache::new(params, Indexing::Modulo, Lru::new()),
            lists: ListsLayout::new(ListsScheme::Baseline, num_tiles),
            attrs: AttributesLayout::new(attr_counts),
        }
    }

    /// The PB-Lists layout (baseline, strided).
    pub fn lists_layout(&self) -> &ListsLayout {
        &self.lists
    }

    /// The PB-Attributes layout.
    pub fn attrs_layout(&self) -> &AttributesLayout {
        &self.attrs
    }

    fn access(&mut self, block: BlockAddr, kind: AccessKind) -> TileCacheAccess {
        let out = self.cache.access(block, kind, AccessMeta::NONE);
        TileCacheAccess {
            hit: out.hit,
            writeback: out.evicted.and_then(|e| e.dirty.then_some(e.addr)),
            block,
        }
    }

    /// Polygon List Builder writes PMD `n` of `tile`'s list.
    pub fn write_pmd(&mut self, tile: TileId, n: u32) -> TileCacheAccess {
        let block = self.lists.pmd_block(tile, n);
        self.access(block, AccessKind::Write)
    }

    /// Polygon List Builder writes attribute `k` of primitive `p`.
    pub fn write_attr(&mut self, p: usize, k: u8) -> TileCacheAccess {
        let block = self.attrs.attr_block(p, k);
        self.access(block, AccessKind::Write)
    }

    /// Tile Fetcher reads the list block containing PMD `first_n`.
    pub fn read_list_block(&mut self, tile: TileId, first_n: u32) -> TileCacheAccess {
        let block = self.lists.pmd_block(tile, first_n);
        self.access(block, AccessKind::Read)
    }

    /// Tile Fetcher reads attribute `k` of primitive `p`.
    pub fn read_attr(&mut self, p: usize, k: u8) -> TileCacheAccess {
        let block = self.attrs.attr_block(p, k);
        self.access(block, AccessKind::Read)
    }

    /// End of frame: flush, returning dirty blocks.
    pub fn drain_dirty(&mut self) -> Vec<BlockAddr> {
        self.cache
            .drain()
            .into_iter()
            .filter_map(|e| e.dirty.then_some(e.addr))
            .collect()
    }

    /// Hit/miss statistics.
    pub fn stats(&self) -> &AccessStats {
        self.cache.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> BaselineTileCache {
        BaselineTileCache::new(
            CacheParams::new(1024, 64, 4, 1), // 16 lines
            64,
            &[3, 3, 2, 5],
        )
    }

    #[test]
    fn attr_write_then_read_hits() {
        let mut c = cache();
        assert!(!c.write_attr(0, 0).hit);
        assert!(c.read_attr(0, 0).hit);
        assert!(!c.read_attr(0, 1).hit, "different block per attribute");
    }

    #[test]
    fn primitive_read_is_per_block() {
        let mut c = cache();
        // Reading primitive 3 (5 attributes) misses 5 blocks cold.
        for k in 0..5 {
            assert!(!c.read_attr(3, k).hit);
        }
        assert_eq!(c.stats().read_misses, 5);
    }

    #[test]
    fn lists_and_attrs_share_capacity() {
        let mut c = cache();
        c.write_pmd(TileId(0), 0);
        c.write_attr(0, 0);
        assert_eq!(c.stats().writes(), 2);
        assert!(c.read_list_block(TileId(0), 0).hit);
    }

    #[test]
    fn drain_returns_dirty_blocks() {
        let mut c = cache();
        c.write_attr(0, 0);
        c.write_attr(0, 1);
        c.read_attr(2, 0);
        assert_eq!(c.drain_dirty().len(), 2);
    }
}
