//! Full-system frame drivers.
//!
//! [`BaselineSystem`] and [`TcorSystem`] replay one frame — geometry,
//! binning, both Tiling Engine phases, raster-side traffic — through
//! their respective Tile Cache organizations over a shared
//! [`MemoryHierarchy`], producing a [`FrameReport`]. The access *streams*
//! are identical by construction; only the memory system differs, exactly
//! as in the paper's methodology.

use crate::attribute_cache::{
    AttributeCache, AttributeCacheConfig, EvictedPrim, ReadResult, WriteResult,
};
use crate::baseline::BaselineTileCache;
use crate::list_cache::ListCache;
use crate::report::{FrameReport, StructureActivity};
use std::collections::VecDeque;
use tcor_cache::policy::Lru;
use tcor_cache::{AccessKind, AccessMeta, Cache, Indexing};
use tcor_common::{
    BlockAddr, CacheParams, FrameTrace, GpuConfig, PrimitiveId, TileCacheOrg, TileGrid,
    TraversalOrder, LINE_SIZE,
};
use tcor_gpu::{
    bin_scene_with, fetch_ops, plb_ops, FetchOp, Frame, GeometryPipeline, MshrTiming, OverlapTest,
    PlbOp, RasterParams, RasterTraffic, Scene,
};
use tcor_mem::{L2Mode, MemoryHierarchy, PbTag};
use tcor_pbuf::{AttributesLayout, BinnedFrame, ListsLayout, ListsScheme};

/// Number of fragment processors (Fig. 5 shows four texture/instruction
/// cache pairs).
pub const FRAGMENT_PROCESSORS: u32 = 4;

/// SIMD lanes per fragment processor: each processor shades a 4-fragment
/// quad per instruction cycle (the quad granularity of §II.A).
pub const SIMD_LANES: u32 = 4;

/// Configuration for a full-system run.
#[derive(Clone, Debug)]
pub struct SystemConfig {
    /// Table I parameters plus the Tile Cache organization.
    pub gpu: GpuConfig,
    /// L2 behaviour ([`L2Mode::Baseline`] gives the "TCOR without L2
    /// enhancements" ablation when combined with the TCOR L1s).
    pub l2_mode: L2Mode,
    /// Tile Fetcher MSHRs (outstanding-miss overlap).
    pub mshrs: usize,
    /// Tile Fetcher output-queue depth (locked primitives in flight).
    pub queue_depth: usize,
    /// Raster-side traffic parameters.
    pub raster: RasterParams,
    /// PB-Lists layout used by the TCOR Primitive List Cache
    /// ([`ListsScheme::Baseline`] gives the layout ablation).
    pub list_scheme: ListsScheme,
    /// Warm-start the L2 with the previous frame's Parameter Buffer
    /// contents (clean lines at the same addresses — the PB is rebuilt in
    /// place every frame, so steady state keeps much of it resident).
    pub warm_l2: bool,
    /// Whether block-granularity caches (the unified Tile Cache and the
    /// Primitive List Cache) fetch the line from the L2 on a write miss.
    /// Required for correctness with partial-line writes (a PMD is 4
    /// bytes, an attribute 48 of 64); the TCOR Attribute Cache needs no
    /// fill because a primitive write carries its complete data —
    /// one of the structural advantages of the decoupled design.
    pub fetch_on_write_miss: bool,
    /// Instruction-cache geometry (shared model for the V./F. Inst caches
    /// of Fig. 5).
    pub instr_cache: CacheParams,
    /// Attribute Cache write bypass (§III.C.4); disable for the D2
    /// ablation.
    pub attr_write_bypass: bool,
    /// Attribute Cache set-index function; `Modulo` is the D5 ablation of
    /// the XOR placement \[12\].
    pub attr_indexing: Indexing,
    /// Polygon List Builder tile-overlap test (bounding box by default;
    /// the exact SAT test is the Antochi/Yang-style extension \[2\], \[39\]).
    pub overlap_test: OverlapTest,
    /// Fragment processors (4 in Fig. 5). The paper's conclusion points
    /// at "more aggressive Raster Pipeline implementations, including
    /// Parallel Renderers" — scale this up to study when the Tiling
    /// Engine becomes the bottleneck (`tcor-sim scaling`).
    pub fragment_processors: u32,
    /// SIMD lanes per fragment processor (quad granularity).
    pub simd_lanes: u32,
}

impl SystemConfig {
    fn base(gpu: GpuConfig, l2_mode: L2Mode) -> Self {
        SystemConfig {
            gpu,
            l2_mode,
            mshrs: 8,
            queue_depth: 16,
            raster: RasterParams::default(),
            list_scheme: ListsScheme::Interleaved,
            warm_l2: true,
            fetch_on_write_miss: true,
            instr_cache: CacheParams::new(8 << 10, LINE_SIZE, 4, 1),
            attr_write_bypass: true,
            attr_indexing: Indexing::Xor,
            overlap_test: OverlapTest::BoundingBox,
            fragment_processors: FRAGMENT_PROCESSORS,
            simd_lanes: SIMD_LANES,
        }
    }

    /// Baseline GPU, 64 KiB unified Tile Cache (Table I).
    pub fn paper_baseline_64k() -> Self {
        Self::base(GpuConfig::paper_baseline(), L2Mode::Baseline)
    }

    /// Baseline GPU, 128 KiB unified Tile Cache (§V.B).
    pub fn paper_baseline_128k() -> Self {
        Self::base(GpuConfig::paper_baseline_128k(), L2Mode::Baseline)
    }

    /// TCOR matching the 64 KiB budget: 16 KiB list + 48 KiB attribute
    /// caches, TCOR L2.
    pub fn paper_tcor_64k() -> Self {
        Self::base(GpuConfig::paper_tcor(), L2Mode::TcorEnhanced)
    }

    /// TCOR matching the 128 KiB budget: 16 KiB + 112 KiB.
    pub fn paper_tcor_128k() -> Self {
        Self::base(GpuConfig::paper_tcor_128k(), L2Mode::TcorEnhanced)
    }

    /// Ablation: keep the TCOR L1s but run the baseline L2 (the middle
    /// bars of Figures 20–21).
    pub fn without_l2_enhancements(mut self) -> Self {
        self.l2_mode = L2Mode::Baseline;
        self
    }

    /// Replaces the raster traffic parameters (per-benchmark
    /// calibration).
    pub fn with_raster(mut self, raster: RasterParams) -> Self {
        self.raster = raster;
        self
    }
}

/// The read-only L1s surrounding the Tile Cache (Fig. 5): vertex,
/// texture ×4 and instruction caches. Their lines are never dirty, so
/// misses are the only traffic they forward.
#[derive(Debug)]
struct OtherL1s {
    vertex: Cache<Lru>,
    textures: Vec<Cache<Lru>>,
    instr: Cache<Lru>,
    tex_rr: usize,
}

impl OtherL1s {
    fn new(cfg: &SystemConfig) -> Self {
        OtherL1s {
            vertex: Cache::new(cfg.gpu.vertex_cache, Indexing::Modulo, Lru::new()),
            textures: (0..cfg.gpu.num_texture_caches)
                .map(|_| Cache::new(cfg.gpu.texture_cache, Indexing::Modulo, Lru::new()))
                .collect(),
            instr: Cache::new(cfg.instr_cache, Indexing::Modulo, Lru::new()),
            tex_rr: 0,
        }
    }

    fn read_through(cache: &mut Cache<Lru>, block: BlockAddr, h: &mut MemoryHierarchy) {
        if !cache.access(block, AccessKind::Read, AccessMeta::NONE).hit {
            h.access(block, AccessKind::Read, PbTag::NONE);
        }
    }

    fn vertex_read(&mut self, block: BlockAddr, h: &mut MemoryHierarchy) {
        Self::read_through(&mut self.vertex, block, h);
    }

    fn texture_read(&mut self, block: BlockAddr, h: &mut MemoryHierarchy) {
        let i = self.tex_rr;
        self.tex_rr = (self.tex_rr + 1) % self.textures.len();
        Self::read_through(&mut self.textures[i], block, h);
    }

    fn instr_read(&mut self, block: BlockAddr, h: &mut MemoryHierarchy) {
        Self::read_through(&mut self.instr, block, h);
    }

    /// Zeroes all statistics while keeping cache contents (steady-state
    /// frame boundaries).
    fn reset_stats(&mut self) {
        self.vertex.reset_stats();
        for t in &mut self.textures {
            t.reset_stats();
        }
        self.instr.reset_stats();
    }
}

/// Classifies Tile Cache blocks for the L2's PB tags.
struct Tagger<'a> {
    lists: ListsLayout,
    attrs: &'a AttributesLayout,
    frame: &'a BinnedFrame,
    order: &'a TraversalOrder,
}

impl Tagger<'_> {
    fn tag_of(&self, block: BlockAddr) -> PbTag {
        use tcor_pbuf::Region;
        match Region::of_block(block) {
            Region::PbLists => match self.lists.tile_of_block(block) {
                Some(tile) => PbTag::lists(self.order.rank_of(tile)),
                None => PbTag::NONE,
            },
            Region::PbAttributes => match self.attrs.primitive_of_block(block) {
                Some(p) => {
                    PbTag::attributes(self.frame.primitive(PrimitiveId(p as u32)).last_use())
                }
                None => PbTag::NONE,
            },
            _ => PbTag::NONE,
        }
    }

    fn attr_tag(&self, prim: PrimitiveId) -> PbTag {
        PbTag::attributes(self.frame.primitive(prim).last_use())
    }
}

/// Installs the previous frame's Parameter Buffer into the L2 as clean
/// lines (steady-state warm start; the PB occupies the same addresses
/// every frame).
fn warm_l2(
    hierarchy: &mut MemoryHierarchy,
    frame: &BinnedFrame,
    order: &TraversalOrder,
    tagger: &Tagger<'_>,
    attrs_layout: &AttributesLayout,
) {
    for tile in order.iter() {
        let n_pmds = frame.tile_list(tile).len() as u32;
        let mut n = 0u32;
        while n < n_pmds {
            let b = tagger.lists.pmd_block(tile, n);
            hierarchy.warm_fill(b, tagger.tag_of(b));
            n += tcor_pbuf::PMDS_PER_BLOCK;
        }
    }
    for p in 0..attrs_layout.num_primitives() {
        for k in 0..attrs_layout.attr_count(p) {
            let b = attrs_layout.attr_block(p, k);
            hierarchy.warm_fill(b, tagger.tag_of(b));
        }
    }
}

/// Builds a fresh memory hierarchy for `cfg`.
fn new_hierarchy(cfg: &SystemConfig) -> MemoryHierarchy {
    MemoryHierarchy::new(cfg.gpu.l2, cfg.gpu.memory, cfg.l2_mode)
}

/// Runs the Geometry Pipeline (vertex traffic through the persistent
/// L1s) and bins the frame.
fn geometry_and_bin(
    cfg: &SystemConfig,
    scene: &Scene,
    l1s: &mut OtherL1s,
    hierarchy: &mut MemoryHierarchy,
) -> (TileGrid, TraversalOrder, Frame) {
    let grid = TileGrid::new(
        cfg.gpu.screen_width,
        cfg.gpu.screen_height,
        cfg.gpu.tile_size,
    );
    let order = cfg.gpu.traversal.order(&grid);
    let geo = GeometryPipeline::new(grid).run(scene);
    for b in &geo.vertex_fetch_blocks {
        l1s.vertex_read(*b, hierarchy);
    }
    let frame = bin_scene_with(&geo.visible, &grid, &order, cfg.overlap_test);
    (grid, order, frame)
}

/// Raster-side traffic for a finished tile.
fn raster_tile(
    tile_index: usize,
    frame: &Frame,
    grid: &TileGrid,
    raster: &mut RasterTraffic,
    l1s: &mut OtherL1s,
    hierarchy: &mut MemoryHierarchy,
) {
    let fragments = frame.fragments_per_tile[tile_index];
    for b in raster.texture_blocks(fragments) {
        l1s.texture_read(b, hierarchy);
    }
    for b in raster.instruction_blocks() {
        l1s.instr_read(b, hierarchy);
    }
    for b in raster.framebuffer_blocks(tile_index, grid.tile_size()) {
        hierarchy.write_direct(b);
    }
}

/// Assembles the final report from the run's parts.
#[allow(clippy::too_many_arguments)]
fn build_report(
    system: &'static str,
    mut structures: Vec<StructureActivity>,
    hierarchy: &MemoryHierarchy,
    l1s: &OtherL1s,
    raster: &RasterTraffic,
    frame: &Frame,
    fetch_cycles: u64,
    prims_fetched: u64,
    plb_cycles: u64,
    coupled_cycles: f64,
    pb_footprint_bytes: u64,
    shader_throughput: f64,
) -> FrameReport {
    let fragments = frame.total_fragments();
    let shader_instructions = raster.shader_instructions_executed(fragments);
    let tex_stats = l1s
        .textures
        .iter()
        .map(|c| *c.stats())
        .sum::<tcor_common::AccessStats>();
    structures.push(StructureActivity {
        name: "vertex$",
        size_bytes: l1s.vertex.params().size_bytes,
        instances: 1,
        stats: *l1s.vertex.stats(),
    });
    structures.push(StructureActivity {
        name: "tex$",
        size_bytes: l1s.textures[0].params().size_bytes,
        instances: l1s.textures.len() as u32,
        stats: tex_stats,
    });
    structures.push(StructureActivity {
        name: "instr$",
        size_bytes: l1s.instr.params().size_bytes,
        instances: 1,
        stats: *l1s.instr.stats(),
    });
    FrameReport {
        system,
        structures,
        l2_stats: *hierarchy.l2_stats(),
        l2_traffic: *hierarchy.l2_traffic(),
        mm_traffic: *hierarchy.mm_traffic(),
        dead_drops: hierarchy.dead_drops(),
        l2_wb_blocks: hierarchy.writeback_blocks(),
        pb_fill_blocks: hierarchy.pb_fill_blocks(),
        attr_wb_blocks: 0,
        attr_opt_violations: 0,
        fetch_cycles,
        prims_fetched,
        plb_cycles,
        raster_cycles: shader_instructions / shader_throughput,
        coupled_cycles,
        fragments,
        shader_instructions,
        num_primitives: frame.binned.num_primitives(),
        pb_footprint_bytes,
        attr_buffer_utilization: 0.0,
        attr_line_utilization: 0.0,
        attr_stalls: 0,
    }
}

/// Emits one tile's fetch span plus the memory-side counter samples the
/// timeline viewer plots: MSHR occupancy and the cumulative L2
/// miss/writeback/dead-drop series. Timestamps are offset by
/// `plb_cycles` so the Polygon List Builder phase and the Tile Fetcher
/// phase lay out sequentially on one clock, matching the frame's actual
/// two-phase execution.
fn emit_tile_trace(
    trace: &mut FrameTrace,
    plb_cycles: u64,
    span_start: u64,
    timing: &MshrTiming,
    hierarchy: &MemoryHierarchy,
    tile: tcor_common::TileId,
) {
    let now = plb_cycles + timing.now();
    trace.complete(
        "fetch",
        format!("tile {}", tile.index()),
        plb_cycles + span_start,
        timing.now().saturating_sub(span_start),
        vec![("tile", tile.index() as u64)],
    );
    trace.counter(
        "mshr",
        "mshr_outstanding",
        now,
        vec![("in_flight", timing.outstanding() as u64)],
    );
    trace.counter(
        "l2",
        "l2_events",
        now,
        vec![
            ("misses", hierarchy.l2_stats().misses()),
            ("writebacks", hierarchy.l2_stats().writebacks),
            ("dead_drops", hierarchy.dead_drops()),
        ],
    );
}

/// Emits the two Tiling Engine phase spans (PLB then Tile Fetcher) and
/// the end-of-frame marker.
fn emit_phase_trace(trace: &mut FrameTrace, plb_cycles: u64, fetch_cycles: u64) {
    if !trace.is_enabled() {
        return;
    }
    trace.complete("phase", "polygon list builder", 0, plb_cycles, vec![]);
    trace.complete("phase", "tile fetcher", plb_cycles, fetch_cycles, vec![]);
    trace.instant("phase", "end of frame", plb_cycles + fetch_cycles);
}

/// The baseline GPU: unified LRU Tile Cache, baseline layouts, LRU L2.
#[derive(Clone, Debug)]
pub struct BaselineSystem {
    cfg: SystemConfig,
}

impl BaselineSystem {
    /// Creates the system.
    ///
    /// # Panics
    ///
    /// Panics if the configuration's Tile Cache organization is not
    /// [`TileCacheOrg::Unified`].
    pub fn new(cfg: SystemConfig) -> Self {
        assert!(
            matches!(cfg.gpu.tile_cache, TileCacheOrg::Unified { .. }),
            "baseline system needs a unified tile cache"
        );
        BaselineSystem { cfg }
    }

    /// Runs one frame through a cold memory system (with the configured
    /// L2 warm start) and reports every measured quantity. For true
    /// steady-state multi-frame runs use [`BaselineSession`].
    pub fn run_frame(&self, scene: &Scene) -> FrameReport {
        let mut hierarchy = new_hierarchy(&self.cfg);
        let mut l1s = OtherL1s::new(&self.cfg);
        let mut raster = RasterTraffic::new(self.cfg.raster);
        baseline_frame(
            &self.cfg,
            scene,
            &mut hierarchy,
            &mut l1s,
            &mut raster,
            true,
            &mut FrameTrace::disabled(),
        )
    }

    /// Like [`run_frame`](Self::run_frame), but also records the Tiling
    /// Engine timeline (per-tile fetch spans, MSHR occupancy, L2 event
    /// series) for the trace exporter.
    pub fn run_frame_traced(&self, scene: &Scene) -> (FrameReport, FrameTrace) {
        let mut hierarchy = new_hierarchy(&self.cfg);
        let mut l1s = OtherL1s::new(&self.cfg);
        let mut raster = RasterTraffic::new(self.cfg.raster);
        let mut trace = FrameTrace::enabled();
        let report = baseline_frame(
            &self.cfg,
            scene,
            &mut hierarchy,
            &mut l1s,
            &mut raster,
            true,
            &mut trace,
        );
        (report, trace)
    }
}

/// One baseline frame over the given (possibly persistent) memory-system
/// components. `one_shot` selects cold-start semantics: apply the L2 warm
/// start and dispose of the whole Parameter Buffer at frame end; steady
/// state (`false`) keeps the L2 across frames. `trace` collects the
/// Tiling Engine timeline; pass [`FrameTrace::disabled`] for measurement
/// runs (a disabled collector records nothing and perturbs nothing).
fn baseline_frame(
    cfg: &SystemConfig,
    scene: &Scene,
    hierarchy: &mut MemoryHierarchy,
    l1s: &mut OtherL1s,
    raster: &mut RasterTraffic,
    one_shot: bool,
    trace: &mut FrameTrace,
) -> FrameReport {
    {
        let (grid, order, frame) = geometry_and_bin(cfg, scene, l1s, hierarchy);
        let mut plb_cycles = 0u64;
        let mut prims_fetched = 0u64;
        let TileCacheOrg::Unified { cache: params } = cfg.gpu.tile_cache else {
            unreachable!("checked in constructor");
        };
        let attr_counts = frame.binned.attr_counts();
        let mut tc = BaselineTileCache::new(params, grid.num_tiles() as u32, &attr_counts);
        let attrs_layout = AttributesLayout::new(&attr_counts);
        let tagger = Tagger {
            lists: ListsLayout::new(ListsScheme::Baseline, grid.num_tiles() as u32),
            attrs: &attrs_layout,
            frame: &frame.binned,
            order: &order,
        };

        if one_shot && cfg.warm_l2 {
            warm_l2(hierarchy, &frame.binned, &order, &tagger, &attrs_layout);
        }

        // --- Polygon List Builder phase.
        for op in plb_ops(&frame.binned, &order) {
            plb_cycles += 1;
            let acc = match op {
                PlbOp::PmdWrite { tile, n, .. } => tc.write_pmd(tile, n),
                PlbOp::AttrWrite { prim, k } => tc.write_attr(prim.index(), k),
            };
            if cfg.fetch_on_write_miss && !acc.hit {
                // Partial-line write: the rest of the block must be
                // fetched (a PMD is 4 bytes, an attribute 48 of 64).
                hierarchy.access(acc.block, AccessKind::Read, tagger.tag_of(acc.block));
            }
            if let Some(wb) = acc.writeback {
                hierarchy.access(wb, AccessKind::Write, tagger.tag_of(wb));
            }
        }

        // --- Tile Fetcher phase.
        let mut timing = MshrTiming::new(cfg.mshrs);
        let mut coupled_cycles = 0.0f64;
        let mut tile_mark = 0u64;
        for op in fetch_ops(&frame.binned, &order) {
            match op {
                FetchOp::ListRead { tile, first_n } => {
                    let acc = tc.read_list_block(tile, first_n);
                    if let Some(wb) = acc.writeback {
                        hierarchy.access(wb, AccessKind::Write, tagger.tag_of(wb));
                    }
                    if acc.hit {
                        timing.issue_hit();
                    } else {
                        let lat =
                            hierarchy.access(acc.block, AccessKind::Read, tagger.tag_of(acc.block));
                        timing.issue_miss(lat as u64);
                    }
                }
                FetchOp::PrimRead { prim, .. } => {
                    prims_fetched += 1;
                    let attr_count = frame.binned.primitive(prim).attr_count;
                    for k in 0..attr_count {
                        let acc = tc.read_attr(prim.index(), k);
                        if let Some(wb) = acc.writeback {
                            hierarchy.access(wb, AccessKind::Write, tagger.tag_of(wb));
                        }
                        if acc.hit {
                            timing.issue_hit();
                        } else {
                            let lat = hierarchy.access(
                                acc.block,
                                AccessKind::Read,
                                tagger.tag_of(acc.block),
                            );
                            timing.issue_miss(lat as u64);
                        }
                    }
                }
                FetchOp::TileDone { tile } => {
                    hierarchy.tile_done();
                    // Fetch/raster coupling: this tile's rasterization
                    // cannot finish before its primitives were fetched.
                    let span_start = tile_mark;
                    let fetch_t = timing.now().saturating_sub(tile_mark) as f64;
                    tile_mark = timing.now();
                    if trace.is_enabled() {
                        emit_tile_trace(trace, plb_cycles, span_start, &timing, hierarchy, tile);
                        trace.counter(
                            "tile$",
                            "prims",
                            plb_cycles + timing.now(),
                            vec![("fetched", prims_fetched)],
                        );
                    }
                    let raster_t = frame.fragments_per_tile[tile.index()]
                        * cfg.raster.shader_instructions as f64
                        / (cfg.fragment_processors * cfg.simd_lanes) as f64
                        + 32.0;
                    coupled_cycles += fetch_t.max(raster_t);
                    raster_tile(tile.index(), &frame, &grid, raster, l1s, hierarchy);
                }
            }
        }
        let fetch_cycles = timing.finish();
        emit_phase_trace(trace, plb_cycles, fetch_cycles);

        // --- End of frame.
        for wb in tc.drain_dirty() {
            hierarchy.access(wb, AccessKind::Write, tagger.tag_of(wb));
        }
        let pb_footprint = tagger
            .lists
            .footprint_bytes(frame.binned.max_list_len() as u32)
            + attrs_layout.footprint_bytes();
        if one_shot {
            hierarchy.end_frame();
        } else {
            hierarchy.frame_boundary();
        }

        let structures = vec![StructureActivity {
            name: "tile$",
            size_bytes: params.size_bytes,
            instances: 1,
            stats: *tc.stats(),
        }];
        build_report(
            "baseline",
            structures,
            hierarchy,
            l1s,
            raster,
            &frame,
            fetch_cycles,
            prims_fetched,
            plb_cycles,
            coupled_cycles,
            pb_footprint,
            (cfg.fragment_processors * cfg.simd_lanes) as f64,
        )
    }
}

/// A persistent baseline GPU: the L2, DRAM state and surrounding L1s
/// survive across frames (the true steady state that `warm_l2`
/// approximates for one-shot runs). Per-frame counters are reset at each
/// `run_frame`, so every report covers exactly one frame.
#[derive(Debug)]
pub struct BaselineSession {
    cfg: SystemConfig,
    hierarchy: MemoryHierarchy,
    l1s: OtherL1s,
    raster: RasterTraffic,
}

impl BaselineSession {
    /// Creates the session with a cold memory system.
    ///
    /// # Panics
    ///
    /// Panics unless the configuration uses a unified Tile Cache.
    pub fn new(cfg: SystemConfig) -> Self {
        assert!(
            matches!(cfg.gpu.tile_cache, TileCacheOrg::Unified { .. }),
            "baseline session needs a unified tile cache"
        );
        BaselineSession {
            hierarchy: new_hierarchy(&cfg),
            l1s: OtherL1s::new(&cfg),
            raster: RasterTraffic::new(cfg.raster),
            cfg,
        }
    }

    /// Runs the next frame of the sequence and reports it. The first
    /// frame is cold; from the second frame on the L2 holds the previous
    /// frame's Parameter Buffer and texture working set.
    pub fn run_frame(&mut self, scene: &Scene) -> FrameReport {
        self.hierarchy.reset_counters();
        self.l1s.reset_stats();
        baseline_frame(
            &self.cfg,
            scene,
            &mut self.hierarchy,
            &mut self.l1s,
            &mut self.raster,
            false,
            &mut FrameTrace::disabled(),
        )
    }
}

/// The TCOR GPU: split Tile Cache (Primitive List Cache + Attribute Cache
/// with OPT), interleaved PB-Lists, dead-line-aware L2.
#[derive(Clone, Debug)]
pub struct TcorSystem {
    cfg: SystemConfig,
}

impl TcorSystem {
    /// Creates the system.
    ///
    /// # Panics
    ///
    /// Panics if the configuration's Tile Cache organization is not
    /// [`TileCacheOrg::Split`].
    pub fn new(cfg: SystemConfig) -> Self {
        assert!(
            matches!(cfg.gpu.tile_cache, TileCacheOrg::Split { .. }),
            "TCOR system needs a split tile cache"
        );
        TcorSystem { cfg }
    }

    /// Runs one frame through a cold memory system (with the configured
    /// L2 warm start) and reports every measured quantity. For true
    /// steady-state multi-frame runs use [`TcorSession`].
    pub fn run_frame(&self, scene: &Scene) -> FrameReport {
        let mut hierarchy = new_hierarchy(&self.cfg);
        let mut l1s = OtherL1s::new(&self.cfg);
        let mut raster = RasterTraffic::new(self.cfg.raster);
        tcor_frame(
            &self.cfg,
            scene,
            &mut hierarchy,
            &mut l1s,
            &mut raster,
            true,
            &mut FrameTrace::disabled(),
        )
    }

    /// Like [`run_frame`](Self::run_frame), but also records the Tiling
    /// Engine timeline (per-tile fetch spans, MSHR occupancy, L2 event
    /// series, Attribute Cache occupancy) for the trace exporter.
    pub fn run_frame_traced(&self, scene: &Scene) -> (FrameReport, FrameTrace) {
        let mut hierarchy = new_hierarchy(&self.cfg);
        let mut l1s = OtherL1s::new(&self.cfg);
        let mut raster = RasterTraffic::new(self.cfg.raster);
        let mut trace = FrameTrace::enabled();
        let report = tcor_frame(
            &self.cfg,
            scene,
            &mut hierarchy,
            &mut l1s,
            &mut raster,
            true,
            &mut trace,
        );
        (report, trace)
    }
}

/// One TCOR frame over the given (possibly persistent) memory-system
/// components; see [`baseline_frame`] for the `one_shot` and `trace`
/// semantics.
fn tcor_frame(
    cfg: &SystemConfig,
    scene: &Scene,
    hierarchy: &mut MemoryHierarchy,
    l1s: &mut OtherL1s,
    raster: &mut RasterTraffic,
    one_shot: bool,
    trace: &mut FrameTrace,
) -> FrameReport {
    {
        let (grid, order, frame) = geometry_and_bin(cfg, scene, l1s, hierarchy);
        let mut plb_cycles = 0u64;
        let mut prims_fetched = 0u64;
        let TileCacheOrg::Split {
            list_cache: list_params,
            attribute_bytes,
            attribute_ways,
        } = cfg.gpu.tile_cache
        else {
            unreachable!("checked in constructor");
        };
        let num_tiles = grid.num_tiles() as u32;
        let mut lc = ListCache::new(list_params, cfg.list_scheme, num_tiles);
        let mut ac = AttributeCache::new(
            AttributeCacheConfig::from_budget(attribute_bytes, attribute_ways as usize)
                .with_write_bypass(cfg.attr_write_bypass)
                .with_indexing(cfg.attr_indexing),
        );
        let attr_counts = frame.binned.attr_counts();
        let attrs_layout = AttributesLayout::new(&attr_counts);
        let tagger = Tagger {
            lists: ListsLayout::new(cfg.list_scheme, num_tiles),
            attrs: &attrs_layout,
            frame: &frame.binned,
            order: &order,
        };

        let flush_evicted = |evicted: &[EvictedPrim],
                             hierarchy: &mut MemoryHierarchy,
                             tagger: &Tagger<'_>,
                             attrs_layout: &AttributesLayout| {
            for e in evicted {
                if e.dirty {
                    for k in 0..e.attr_count {
                        let block = attrs_layout.attr_block(e.prim.index(), k);
                        hierarchy.access(block, AccessKind::Write, tagger.attr_tag(e.prim));
                    }
                }
            }
        };

        if one_shot && cfg.warm_l2 {
            warm_l2(hierarchy, &frame.binned, &order, &tagger, &attrs_layout);
        }

        // --- Polygon List Builder phase.
        let mut bypassed: Option<PrimitiveId> = None;
        for op in plb_ops(&frame.binned, &order) {
            plb_cycles += 1;
            match op {
                PlbOp::PmdWrite { tile, n, .. } => {
                    let acc = lc.write_pmd(tile, n);
                    if cfg.fetch_on_write_miss && !acc.hit {
                        // PMDs are 4-byte partial-line writes: fill.
                        hierarchy.access(acc.block, AccessKind::Read, tagger.tag_of(acc.block));
                    }
                    if let Some(wb) = acc.writeback {
                        hierarchy.access(wb, AccessKind::Write, tagger.tag_of(wb));
                    }
                }
                PlbOp::AttrWrite { prim, k } => {
                    if k == 0 {
                        let p = frame.binned.primitive(prim);
                        match ac.write(prim, p.attr_count, p.first_use()) {
                            WriteResult::Allocated { evicted } => {
                                bypassed = None;
                                flush_evicted(&evicted, hierarchy, &tagger, &attrs_layout);
                            }
                            WriteResult::Bypassed => {
                                bypassed = Some(prim);
                                let block = attrs_layout.attr_block(prim.index(), 0);
                                hierarchy.access(block, AccessKind::Write, tagger.attr_tag(prim));
                            }
                        }
                    } else if bypassed == Some(prim) {
                        let block = attrs_layout.attr_block(prim.index(), k);
                        hierarchy.access(block, AccessKind::Write, tagger.attr_tag(prim));
                    }
                }
            }
        }

        // --- Tile Fetcher phase.
        let mut timing = MshrTiming::new(cfg.mshrs);
        let mut queue: VecDeque<PrimitiveId> = VecDeque::new();
        let mut coupled_cycles = 0.0f64;
        let mut tile_mark = 0u64;
        for op in fetch_ops(&frame.binned, &order) {
            match op {
                FetchOp::ListRead { tile, first_n } => {
                    let acc = lc.read_block(tile, first_n);
                    if let Some(wb) = acc.writeback {
                        hierarchy.access(wb, AccessKind::Write, tagger.tag_of(wb));
                    }
                    if acc.hit {
                        timing.issue_hit();
                    } else {
                        let lat =
                            hierarchy.access(acc.block, AccessKind::Read, tagger.tag_of(acc.block));
                        timing.issue_miss(lat as u64);
                    }
                }
                FetchOp::PrimRead { tile, prim, .. } => {
                    prims_fetched += 1;
                    let p = frame.binned.primitive(prim);
                    let opt_number = p.next_use_after(order.rank_of(tile));
                    loop {
                        match ac.read(prim, p.attr_count, opt_number) {
                            ReadResult::Hit => {
                                timing.issue_hit();
                                break;
                            }
                            ReadResult::Miss { evicted } => {
                                flush_evicted(&evicted, hierarchy, &tagger, &attrs_layout);
                                for k in 0..p.attr_count {
                                    let block = attrs_layout.attr_block(prim.index(), k);
                                    let lat = hierarchy.access(
                                        block,
                                        AccessKind::Read,
                                        tagger.attr_tag(prim),
                                    );
                                    timing.issue_miss(lat as u64);
                                }
                                break;
                            }
                            ReadResult::Stalled => {
                                // Wait for the Rasterizer to consume the
                                // oldest queued primitive, then retry.
                                let oldest = queue.pop_front().unwrap_or_else(|| {
                                    panic!(
                                        "attribute cache deadlock: {prim:?} \
                                         needs {} entries",
                                        p.attr_count
                                    )
                                });
                                ac.unlock(oldest);
                                timing.bubble(1);
                            }
                        }
                    }
                    queue.push_back(prim);
                    if queue.len() > cfg.queue_depth {
                        let oldest = queue.pop_front().expect("nonempty");
                        ac.unlock(oldest);
                    }
                }
                FetchOp::TileDone { tile } => {
                    hierarchy.tile_done();
                    // Fetch/raster coupling: this tile's rasterization
                    // cannot finish before its primitives were fetched.
                    let span_start = tile_mark;
                    let fetch_t = timing.now().saturating_sub(tile_mark) as f64;
                    tile_mark = timing.now();
                    if trace.is_enabled() {
                        emit_tile_trace(trace, plb_cycles, span_start, &timing, hierarchy, tile);
                        trace.counter(
                            "attr$",
                            "attr_cache",
                            plb_cycles + timing.now(),
                            vec![
                                ("resident", ac.resident_primitives() as u64),
                                ("free_entries", ac.free_entries() as u64),
                                ("locked", ac.locked_primitives()),
                            ],
                        );
                    }
                    let raster_t = frame.fragments_per_tile[tile.index()]
                        * cfg.raster.shader_instructions as f64
                        / (cfg.fragment_processors * cfg.simd_lanes) as f64
                        + 32.0;
                    coupled_cycles += fetch_t.max(raster_t);
                    raster_tile(tile.index(), &frame, &grid, raster, l1s, hierarchy);
                }
            }
        }
        while let Some(p) = queue.pop_front() {
            ac.unlock(p);
        }
        let fetch_cycles = timing.finish();
        emit_phase_trace(trace, plb_cycles, fetch_cycles);

        // --- End of frame.
        let drained = ac.drain();
        flush_evicted(&drained, hierarchy, &tagger, &attrs_layout);
        for wb in lc.drain_dirty() {
            hierarchy.access(wb, AccessKind::Write, tagger.tag_of(wb));
        }
        let pb_footprint = tagger
            .lists
            .footprint_bytes(frame.binned.max_list_len() as u32)
            + attrs_layout.footprint_bytes();
        if one_shot {
            hierarchy.end_frame();
        } else {
            hierarchy.frame_boundary();
        }

        let structures = vec![
            StructureActivity {
                name: "list$",
                size_bytes: list_params.size_bytes,
                instances: 1,
                stats: *lc.stats(),
            },
            StructureActivity {
                name: "attr$",
                size_bytes: attribute_bytes,
                instances: 1,
                stats: *ac.stats(),
            },
        ];
        let (buf_util, line_util, stalls) = (
            ac.avg_buffer_utilization(),
            ac.avg_line_utilization(),
            ac.stall_events(),
        );
        let (attr_wb_blocks, attr_opt_violations) = (ac.writeback_blocks(), ac.opt_violations());
        let mut report = build_report(
            "tcor",
            structures,
            hierarchy,
            l1s,
            raster,
            &frame,
            fetch_cycles,
            prims_fetched,
            plb_cycles,
            coupled_cycles,
            pb_footprint,
            (cfg.fragment_processors * cfg.simd_lanes) as f64,
        );
        report.attr_buffer_utilization = buf_util;
        report.attr_line_utilization = line_util;
        report.attr_stalls = stalls;
        report.attr_wb_blocks = attr_wb_blocks;
        report.attr_opt_violations = attr_opt_violations;
        report
    }
}

/// A persistent TCOR GPU, the steady-state counterpart of
/// [`TcorSystem`]; see [`BaselineSession`].
#[derive(Debug)]
pub struct TcorSession {
    cfg: SystemConfig,
    hierarchy: MemoryHierarchy,
    l1s: OtherL1s,
    raster: RasterTraffic,
}

impl TcorSession {
    /// Creates the session with a cold memory system.
    ///
    /// # Panics
    ///
    /// Panics unless the configuration uses a split Tile Cache.
    pub fn new(cfg: SystemConfig) -> Self {
        assert!(
            matches!(cfg.gpu.tile_cache, TileCacheOrg::Split { .. }),
            "TCOR session needs a split tile cache"
        );
        TcorSession {
            hierarchy: new_hierarchy(&cfg),
            l1s: OtherL1s::new(&cfg),
            raster: RasterTraffic::new(cfg.raster),
            cfg,
        }
    }

    /// Runs the next frame of the sequence and reports it.
    pub fn run_frame(&mut self, scene: &Scene) -> FrameReport {
        self.hierarchy.reset_counters();
        self.l1s.reset_stats();
        tcor_frame(
            &self.cfg,
            scene,
            &mut self.hierarchy,
            &mut self.l1s,
            &mut self.raster,
            false,
            &mut FrameTrace::disabled(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcor_common::Tri2;
    use tcor_gpu::ScenePrimitive;

    /// A deterministic scene: a few hundred primitives scattered over the
    /// screen with varied extents (some spanning many tiles).
    fn test_scene(n: u32) -> Scene {
        (0..n)
            .map(|i| {
                let x = (i as f32 * 97.0) % 1800.0;
                let y = (i as f32 * 53.0) % 700.0;
                let w = 10.0 + (i % 7) as f32 * 30.0;
                let h = 10.0 + (i % 5) as f32 * 25.0;
                ScenePrimitive {
                    tri: Tri2::new((x, y), (x + w, y), (x, y + h)),
                    attr_count: 1 + (i % 5) as u8,
                }
            })
            .collect()
    }

    #[test]
    fn baseline_system_runs_and_conserves_counts() {
        let r = BaselineSystem::new(SystemConfig::paper_baseline_64k()).run_frame(&test_scene(300));
        assert_eq!(r.num_primitives, 300);
        assert!(r.prims_fetched > 0);
        assert!(r.fetch_cycles > 0);
        assert!(r.pb_l2_accesses() > 0);
        assert!(r.total_mm_accesses() > 0);
        assert_eq!(r.dead_drops, 0, "baseline never drops dead lines");
        assert!(r.primitives_per_cycle() <= 1.0);
    }

    #[test]
    fn tcor_system_runs_and_reduces_pb_l2_traffic() {
        // The Parameter Buffer must exceed the Tile Cache for replacement
        // to matter (the paper's footprints are 0.14-1.8 MiB vs 64 KiB):
        // 3000 primitives * ~3 attrs * 64 B ~ 0.55 MiB.
        let scene = test_scene(3000);
        let base = BaselineSystem::new(SystemConfig::paper_baseline_64k()).run_frame(&scene);
        let tcor = TcorSystem::new(SystemConfig::paper_tcor_64k()).run_frame(&scene);
        assert_eq!(base.prims_fetched, tcor.prims_fetched, "identical streams");
        assert!(
            tcor.pb_l2_accesses() < base.pb_l2_accesses(),
            "TCOR {} >= baseline {}",
            tcor.pb_l2_accesses(),
            base.pb_l2_accesses()
        );
        assert!(
            tcor.pb_mm_accesses() <= base.pb_mm_accesses(),
            "TCOR {} > baseline {}",
            tcor.pb_mm_accesses(),
            base.pb_mm_accesses()
        );
    }

    #[test]
    fn tcor_is_faster_in_the_tiling_engine() {
        let scene = test_scene(400);
        let base = BaselineSystem::new(SystemConfig::paper_baseline_64k()).run_frame(&scene);
        let tcor = TcorSystem::new(SystemConfig::paper_tcor_64k()).run_frame(&scene);
        assert!(
            tcor.primitives_per_cycle() > base.primitives_per_cycle(),
            "TCOR ppc {} <= baseline ppc {}",
            tcor.primitives_per_cycle(),
            base.primitives_per_cycle()
        );
    }

    #[test]
    fn l2_ablation_has_more_mm_writes_than_full_tcor() {
        let scene = test_scene(800);
        let without = TcorSystem::new(SystemConfig::paper_tcor_64k().without_l2_enhancements())
            .run_frame(&scene);
        let with = TcorSystem::new(SystemConfig::paper_tcor_64k()).run_frame(&scene);
        assert!(with.pb_mm_writes() <= without.pb_mm_writes());
        assert_eq!(without.dead_drops, 0);
    }

    #[test]
    fn raster_traffic_present_in_both_systems() {
        let scene = test_scene(100);
        let r = TcorSystem::new(SystemConfig::paper_tcor_64k()).run_frame(&scene);
        use tcor_pbuf::Region;
        assert!(r.l2_traffic.region(Region::Textures).l2_reads > 0);
        assert!(r.mm_traffic.region(Region::FrameBuffer).mm_writes > 0);
        assert!(r.fragments > 0.0);
    }

    #[test]
    fn traced_run_records_timeline_without_changing_the_report() {
        let scene = test_scene(300);
        let sys = TcorSystem::new(SystemConfig::paper_tcor_64k());
        let plain = sys.run_frame(&scene);
        let (traced, trace) = sys.run_frame_traced(&scene);
        // Tracing is pure observation: every measured counter matches.
        assert_eq!(plain.l2_stats.misses(), traced.l2_stats.misses());
        assert_eq!(plain.fetch_cycles, traced.fetch_cycles);
        assert_eq!(plain.total_mm_accesses(), traced.total_mm_accesses());
        assert_eq!(plain.attr_wb_blocks, traced.attr_wb_blocks);
        // And the timeline holds one fetch span per tile plus the two
        // phase spans.
        let spans = trace.events().iter().filter(|e| e.cat == "fetch").count();
        assert!(spans > 0, "no per-tile fetch spans recorded");
        assert!(trace.events().iter().any(|e| e.cat == "phase"));
        assert!(trace.events().iter().any(|e| e.cat == "mshr"));
        assert!(trace.events().iter().any(|e| e.cat == "attr$"));
    }

    #[test]
    fn reports_satisfy_probe_conservation() {
        let scene = test_scene(500);
        for r in [
            BaselineSystem::new(SystemConfig::paper_baseline_64k()).run_frame(&scene),
            TcorSystem::new(SystemConfig::paper_tcor_64k()).run_frame(&scene),
        ] {
            for s in &r.structures {
                assert_eq!(
                    s.stats.probes,
                    s.stats.hits() + s.stats.misses(),
                    "{}: probes diverge from classified accesses",
                    s.name
                );
            }
            assert_eq!(
                r.l2_stats.writebacks,
                r.l2_wb_blocks + r.dead_drops,
                "L2 writeback disposal does not balance"
            );
        }
    }

    #[test]
    #[should_panic(expected = "unified tile cache")]
    fn baseline_rejects_split_config() {
        BaselineSystem::new(SystemConfig::paper_tcor_64k());
    }

    #[test]
    #[should_panic(expected = "split tile cache")]
    fn tcor_rejects_unified_config() {
        TcorSystem::new(SystemConfig::paper_baseline_64k());
    }
}
