//! The Primitive List Cache (§III.C.1).
//!
//! A conventional LRU cache in front of the PB-Lists section. PB-Lists
//! traffic is small (a 4-byte PMD versus ~192 bytes of attributes per
//! primitive) and nearly streaming — each block is written by the Polygon
//! List Builder (with intra-block reuse: 16 PMDs per block) and later read
//! exactly once by the Tile Fetcher — so the paper keeps plain LRU here
//! and spends its cleverness on the layout (interleaving, Fig. 6).

use tcor_cache::policy::Lru;
use tcor_cache::{AccessKind, AccessMeta, Cache, Indexing};
use tcor_common::{AccessStats, BlockAddr, CacheParams, TileId};
use tcor_pbuf::{ListsLayout, ListsScheme};

/// Outcome of a list-cache access the system driver must act on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ListAccess {
    /// Whether the access hit in the L1.
    pub hit: bool,
    /// A dirty block displaced to the L2, if any.
    pub writeback: Option<BlockAddr>,
    /// The block accessed (for the L2 request on a miss).
    pub block: BlockAddr,
}

/// LRU cache over PB-Lists blocks with a fixed layout.
#[derive(Clone, Debug)]
pub struct ListCache {
    cache: Cache<Lru>,
    layout: ListsLayout,
}

impl ListCache {
    /// Creates the cache. TCOR uses the interleaved layout; passing
    /// [`ListsScheme::Baseline`] gives the layout-ablation configuration.
    pub fn new(params: CacheParams, scheme: ListsScheme, num_tiles: u32) -> Self {
        ListCache {
            cache: Cache::new(params, Indexing::Modulo, Lru::new()),
            layout: ListsLayout::new(scheme, num_tiles),
        }
    }

    /// The PB-Lists layout in use.
    pub fn layout(&self) -> &ListsLayout {
        &self.layout
    }

    /// Polygon List Builder writes PMD `n` of `tile`'s list.
    pub fn write_pmd(&mut self, tile: TileId, n: u32) -> ListAccess {
        let block = self.layout.pmd_block(tile, n);
        let out = self
            .cache
            .access(block, AccessKind::Write, AccessMeta::NONE);
        ListAccess {
            hit: out.hit,
            writeback: out.evicted.and_then(|e| e.dirty.then_some(e.addr)),
            block,
        }
    }

    /// Tile Fetcher reads the list block starting at PMD `first_n`.
    pub fn read_block(&mut self, tile: TileId, first_n: u32) -> ListAccess {
        let block = self.layout.pmd_block(tile, first_n);
        let out = self.cache.access(block, AccessKind::Read, AccessMeta::NONE);
        ListAccess {
            hit: out.hit,
            writeback: out.evicted.and_then(|e| e.dirty.then_some(e.addr)),
            block,
        }
    }

    /// End of frame: flush, returning dirty blocks for write-back.
    pub fn drain_dirty(&mut self) -> Vec<BlockAddr> {
        self.cache
            .drain()
            .into_iter()
            .filter_map(|e| e.dirty.then_some(e.addr))
            .collect()
    }

    /// Hit/miss statistics.
    pub fn stats(&self) -> &AccessStats {
        self.cache.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(scheme: ListsScheme) -> ListCache {
        // 4 lines, 2-way.
        ListCache::new(CacheParams::new(256, 64, 2, 1), scheme, 64)
    }

    #[test]
    fn pmds_in_same_block_hit_after_first_write() {
        let mut c = small(ListsScheme::Interleaved);
        assert!(!c.write_pmd(TileId(0), 0).hit);
        for n in 1..16 {
            assert!(c.write_pmd(TileId(0), n).hit, "PMD {n} shares the block");
        }
        assert!(!c.write_pmd(TileId(0), 16).hit, "next block");
    }

    #[test]
    fn read_after_write_hits_if_resident() {
        let mut c = small(ListsScheme::Interleaved);
        c.write_pmd(TileId(3), 0);
        assert!(c.read_block(TileId(3), 0).hit);
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = small(ListsScheme::Baseline);
        // Baseline layout: consecutive tiles stride 64 blocks -> with 2
        // sets they all collide in one set (the §III.B pathology).
        c.write_pmd(TileId(0), 0);
        c.write_pmd(TileId(1), 0);
        let third = c.write_pmd(TileId(2), 0);
        assert!(third.writeback.is_some(), "dirty LRU block written back");
    }

    #[test]
    fn interleaved_layout_avoids_that_conflict() {
        let mut c = small(ListsScheme::Interleaved);
        c.write_pmd(TileId(0), 0);
        c.write_pmd(TileId(1), 0);
        let third = c.write_pmd(TileId(2), 0);
        assert!(
            third.writeback.is_none(),
            "consecutive tiles spread over sets"
        );
    }

    #[test]
    fn drain_returns_only_dirty() {
        let mut c = small(ListsScheme::Interleaved);
        c.write_pmd(TileId(0), 0);
        c.read_block(TileId(1), 0); // clean fill
        let dirty = c.drain_dirty();
        assert_eq!(dirty.len(), 1);
        assert_eq!(dirty[0], c.layout().pmd_block(TileId(0), 0));
    }
}
