//! # tcor-pbuf
//!
//! The **Parameter Buffer** data model (§II.B, §III.B of the paper).
//!
//! The Parameter Buffer is the in-memory structure the Tiling Engine
//! builds (Polygon List Builder) and consumes (Tile Fetcher) within each
//! frame. It has two sections:
//!
//! * **PB-Lists** — per-tile lists of Primitive MetaData (PMD) words.
//!   The baseline lays each tile's list out contiguously with room for
//!   1024 primitives (64 blocks), creating power-of-two strides and thus
//!   set conflicts; TCOR interleaves the lists one block per tile per
//!   section (Fig. 6).
//! * **PB-Attributes** — each primitive's vertex attributes, 48 bytes per
//!   attribute, one per 64-byte block, stored once regardless of how many
//!   tiles the primitive overlaps.
//!
//! This crate provides bit-accurate PMD encodings (baseline and TCOR —
//! the latter carries the 12-bit *OPT Number*), exact address math for
//! both layouts, the frame-level [`BinnedFrame`] product of binning
//! (which knows every primitive's future tile schedule, the source of OPT
//! Numbers and last-use tags), and the memory-region map of Fig. 5.

pub mod binned;
pub mod layout;
pub mod pmd;
pub mod region;

pub use binned::{BinnedFrame, BinnedPrimitive};
pub use layout::{
    AttributesLayout, ListsLayout, ListsScheme, MAX_PRIMS_PER_TILE_BASELINE, PMDS_PER_BLOCK,
};
pub use pmd::{PmdBaseline, PmdTcor};
pub use region::Region;
