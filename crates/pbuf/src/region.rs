//! The memory organization of Fig. 5: which region of the address space a
//! block belongs to.
//!
//! The simulator assigns each logical region a fixed, generously-sized
//! window so that a block address classifies in O(1). The TCOR L2
//! enhancement needs exactly this distinction: its per-line 2-bit field
//! records whether a line holds PB-Lists, PB-Attributes or other data
//! (§III.D.1).

use tcor_common::{Address, BlockAddr};

/// Base addresses of the simulated memory regions (256 MiB windows).
pub mod bases {
    /// PB-Lists section of the Parameter Buffer.
    pub const PB_LISTS: u64 = 0x1000_0000;
    /// PB-Attributes section of the Parameter Buffer.
    pub const PB_ATTRIBUTES: u64 = 0x2000_0000;
    /// Texture data.
    pub const TEXTURES: u64 = 0x3000_0000;
    /// Input geometry (vertices).
    pub const VERTICES: u64 = 0x4000_0000;
    /// Vertex + fragment shader instructions.
    pub const INSTRUCTIONS: u64 = 0x5000_0000;
    /// Frame buffer (Color Buffer flush target).
    pub const FRAME_BUFFER: u64 = 0x6000_0000;
    /// Size of each region window.
    pub const WINDOW: u64 = 0x1000_0000;
}

/// Logical memory regions of a graphics application (Fig. 5).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Region {
    /// Per-tile primitive lists.
    PbLists,
    /// Primitive attribute storage.
    PbAttributes,
    /// Texture fetches.
    Textures,
    /// Input geometry.
    Vertices,
    /// Shader instructions.
    Instructions,
    /// Final color output.
    FrameBuffer,
    /// Anything else.
    Other,
}

impl Region {
    /// All regions, in display order.
    pub const ALL: [Region; 7] = [
        Region::PbLists,
        Region::PbAttributes,
        Region::Textures,
        Region::Vertices,
        Region::Instructions,
        Region::FrameBuffer,
        Region::Other,
    ];

    /// Classifies a byte address.
    pub fn of_address(addr: Address) -> Region {
        Self::of_raw(addr.0)
    }

    /// Classifies a block address.
    pub fn of_block(block: BlockAddr) -> Region {
        Self::of_raw(block.base().0)
    }

    fn of_raw(a: u64) -> Region {
        use bases::*;
        match a {
            _ if (PB_LISTS..PB_LISTS + WINDOW).contains(&a) => Region::PbLists,
            _ if (PB_ATTRIBUTES..PB_ATTRIBUTES + WINDOW).contains(&a) => Region::PbAttributes,
            _ if (TEXTURES..TEXTURES + WINDOW).contains(&a) => Region::Textures,
            _ if (VERTICES..VERTICES + WINDOW).contains(&a) => Region::Vertices,
            _ if (INSTRUCTIONS..INSTRUCTIONS + WINDOW).contains(&a) => Region::Instructions,
            _ if (FRAME_BUFFER..FRAME_BUFFER + WINDOW).contains(&a) => Region::FrameBuffer,
            _ => Region::Other,
        }
    }

    /// Whether the region is part of the Parameter Buffer.
    pub fn is_parameter_buffer(self) -> bool {
        matches!(self, Region::PbLists | Region::PbAttributes)
    }

    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            Region::PbLists => "PB-Lists",
            Region::PbAttributes => "PB-Attr",
            Region::Textures => "Textures",
            Region::Vertices => "Vertices",
            Region::Instructions => "Instr",
            Region::FrameBuffer => "FrameBuf",
            Region::Other => "Other",
        }
    }
}

impl std::fmt::Display for Region {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_all_windows() {
        assert_eq!(
            Region::of_address(Address(bases::PB_LISTS)),
            Region::PbLists
        );
        assert_eq!(
            Region::of_address(Address(bases::PB_ATTRIBUTES + 100)),
            Region::PbAttributes
        );
        assert_eq!(
            Region::of_address(Address(bases::TEXTURES + bases::WINDOW - 1)),
            Region::Textures
        );
        assert_eq!(
            Region::of_address(Address(bases::VERTICES)),
            Region::Vertices
        );
        assert_eq!(
            Region::of_address(Address(bases::INSTRUCTIONS)),
            Region::Instructions
        );
        assert_eq!(
            Region::of_address(Address(bases::FRAME_BUFFER)),
            Region::FrameBuffer
        );
        assert_eq!(Region::of_address(Address(0)), Region::Other);
        assert_eq!(Region::of_address(Address(u64::MAX)), Region::Other);
    }

    #[test]
    fn pb_predicate() {
        assert!(Region::PbLists.is_parameter_buffer());
        assert!(Region::PbAttributes.is_parameter_buffer());
        assert!(!Region::Textures.is_parameter_buffer());
    }

    #[test]
    fn block_and_byte_classification_agree() {
        let a = Address(bases::PB_ATTRIBUTES + 4096 + 3);
        assert_eq!(Region::of_address(a), Region::of_block(a.block()));
    }

    #[test]
    fn labels_unique_and_nonempty() {
        let labels: std::collections::HashSet<&str> =
            Region::ALL.iter().map(|r| r.label()).collect();
        assert_eq!(labels.len(), Region::ALL.len());
        assert!(labels.iter().all(|l| !l.is_empty()));
    }
}
