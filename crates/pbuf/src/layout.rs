//! Address math for the two Parameter Buffer sections.

use crate::region::bases;
use tcor_common::{Address, BlockAddr, TileId, LINE_SIZE};

/// PMDs per 64-byte memory block (4-byte PMDs).
pub const PMDS_PER_BLOCK: u32 = 16;

/// Baseline list capacity: "each tile is allotted a maximum of 1024
/// primitives, the list for the next tile begins 64 blocks after the
/// current one" (§II.B).
pub const MAX_PRIMS_PER_TILE_BASELINE: u32 = 1024;

const BLOCKS_PER_TILE_BASELINE: u64 = (MAX_PRIMS_PER_TILE_BASELINE / PMDS_PER_BLOCK) as u64;

/// How PB-Lists places each tile's PMD list in memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ListsScheme {
    /// Contiguous per-tile regions of 64 blocks (Fig. 3). The sparse,
    /// power-of-two-strided layout that causes the conflict-miss
    /// pathology §III.B describes.
    Baseline,
    /// TCOR's interleaving (Fig. 6): section *s* holds block *s* of every
    /// tile's list, one block per tile, so consecutive tiles' lists sit in
    /// consecutive blocks.
    Interleaved,
}

/// PB-Lists address calculator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ListsLayout {
    scheme: ListsScheme,
    base: Address,
    num_tiles: u32,
}

impl ListsLayout {
    /// Creates a layout over `num_tiles` tiles at the standard PB-Lists
    /// base address.
    ///
    /// # Panics
    ///
    /// Panics if `num_tiles` is zero.
    pub fn new(scheme: ListsScheme, num_tiles: u32) -> Self {
        assert!(num_tiles > 0, "a frame has at least one tile");
        ListsLayout {
            scheme,
            base: Address(bases::PB_LISTS),
            num_tiles,
        }
    }

    /// The layout scheme.
    pub fn scheme(&self) -> ListsScheme {
        self.scheme
    }

    /// The PB-Lists base pointer.
    pub fn base(&self) -> Address {
        self.base
    }

    /// Byte address of the `n`-th PMD in `tile`'s list.
    ///
    /// # Panics
    ///
    /// Panics if the tile is out of range, or (baseline only) if `n`
    /// exceeds the 1024-entry allotment.
    pub fn pmd_addr(&self, tile: TileId, n: u32) -> Address {
        assert!(tile.0 < self.num_tiles, "tile out of range");
        let within = (n % PMDS_PER_BLOCK) as u64 * 4;
        let block = match self.scheme {
            ListsScheme::Baseline => {
                assert!(
                    n < MAX_PRIMS_PER_TILE_BASELINE,
                    "baseline list overflow: PMD {n} in {tile:?}"
                );
                tile.0 as u64 * BLOCKS_PER_TILE_BASELINE + (n / PMDS_PER_BLOCK) as u64
            }
            ListsScheme::Interleaved => {
                let section = (n / PMDS_PER_BLOCK) as u64;
                section * self.num_tiles as u64 + tile.0 as u64
            }
        };
        Address(self.base.0 + block * LINE_SIZE + within)
    }

    /// Block containing the `n`-th PMD of `tile`'s list.
    pub fn pmd_block(&self, tile: TileId, n: u32) -> BlockAddr {
        self.pmd_addr(tile, n).block()
    }

    /// Which tile's list a PB-Lists block belongs to (every PB-Lists block
    /// belongs to exactly one tile in both schemes). Returns `None` for
    /// blocks outside this layout's address range.
    ///
    /// This is the derivation §III.D.1 performs in the L2 to tag PB-Lists
    /// lines with their (single, last-use) tile.
    pub fn tile_of_block(&self, block: BlockAddr) -> Option<TileId> {
        let byte = block.base().0;
        if byte < self.base.0 {
            return None;
        }
        let rel_block = (byte - self.base.0) / LINE_SIZE;
        let tile = match self.scheme {
            ListsScheme::Baseline => rel_block / BLOCKS_PER_TILE_BASELINE,
            ListsScheme::Interleaved => rel_block % self.num_tiles as u64,
        };
        (tile < self.num_tiles as u64
            && (self.scheme == ListsScheme::Interleaved || rel_block < self.footprint_blocks()))
        .then_some(TileId(tile as u32))
    }

    fn footprint_blocks(&self) -> u64 {
        self.num_tiles as u64 * BLOCKS_PER_TILE_BASELINE
    }

    /// Bytes the layout reserves when the longest list holds
    /// `max_list_len` PMDs (baseline reserves its full allotment
    /// regardless — that is exactly its sparsity problem).
    pub fn footprint_bytes(&self, max_list_len: u32) -> u64 {
        match self.scheme {
            ListsScheme::Baseline => self.footprint_blocks() * LINE_SIZE,
            ListsScheme::Interleaved => {
                let sections = max_list_len.div_ceil(PMDS_PER_BLOCK).max(1) as u64;
                sections * self.num_tiles as u64 * LINE_SIZE
            }
        }
    }
}

/// PB-Attributes address calculator (Fig. 4).
///
/// Each attribute occupies 48 bytes (16 per triangle vertex) and is
/// block-aligned, i.e. one 64-byte block per attribute; a primitive's
/// attributes are consecutive blocks. Built from the per-primitive
/// attribute counts of a frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AttributesLayout {
    base: Address,
    /// `prefix[p]` = number of attribute blocks before primitive `p`;
    /// has `num_prims + 1` entries.
    prefix: Vec<u32>,
}

impl AttributesLayout {
    /// Builds the layout from per-primitive attribute counts, at the
    /// standard PB-Attributes base address.
    ///
    /// # Panics
    ///
    /// Panics if any primitive has zero or more than 15 attributes (the
    /// PMD field is 4 bits).
    pub fn new(attr_counts: &[u8]) -> Self {
        let mut prefix = Vec::with_capacity(attr_counts.len() + 1);
        let mut acc = 0u32;
        prefix.push(0);
        for (p, &c) in attr_counts.iter().enumerate() {
            assert!(
                (1..=crate::pmd::MAX_ATTRS).contains(&c),
                "primitive {p} has invalid attribute count {c}"
            );
            acc += c as u32;
            prefix.push(acc);
        }
        AttributesLayout {
            base: Address(bases::PB_ATTRIBUTES),
            prefix,
        }
    }

    /// Number of primitives covered.
    pub fn num_primitives(&self) -> usize {
        self.prefix.len() - 1
    }

    /// Attribute count of primitive `p`.
    pub fn attr_count(&self, p: usize) -> u8 {
        (self.prefix[p + 1] - self.prefix[p]) as u8
    }

    /// Byte address of attribute `k` of primitive `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` or `k` is out of range.
    pub fn attr_addr(&self, p: usize, k: u8) -> Address {
        assert!(p < self.num_primitives(), "primitive out of range");
        assert!(k < self.attr_count(p), "attribute out of range");
        Address(self.base.0 + (self.prefix[p] as u64 + k as u64) * LINE_SIZE)
    }

    /// Block of attribute `k` of primitive `p` (one attribute per block).
    pub fn attr_block(&self, p: usize, k: u8) -> BlockAddr {
        self.attr_addr(p, k).block()
    }

    /// The primitive's first-attribute address — used as its Primitive ID
    /// in the baseline encoding.
    pub fn first_attr_addr(&self, p: usize) -> Address {
        self.attr_addr(p, 0)
    }

    /// Which primitive an in-range PB-Attributes block belongs to.
    pub fn primitive_of_block(&self, block: BlockAddr) -> Option<usize> {
        let byte = block.base().0;
        if byte < self.base.0 {
            return None;
        }
        let rel = ((byte - self.base.0) / LINE_SIZE) as u32;
        if rel >= *self.prefix.last().unwrap() {
            return None;
        }
        // prefix is sorted; find p with prefix[p] <= rel < prefix[p+1].
        match self.prefix.binary_search(&rel) {
            Ok(mut i) => {
                // Skip possible equal runs (never happens: counts >= 1).
                while i + 1 < self.prefix.len() && self.prefix[i + 1] == rel {
                    i += 1;
                }
                Some(i)
            }
            Err(i) => Some(i - 1),
        }
    }

    /// Total footprint in bytes (one block per attribute).
    pub fn footprint_bytes(&self) -> u64 {
        *self.prefix.last().unwrap() as u64 * LINE_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_stride_is_64_blocks_per_tile() {
        let l = ListsLayout::new(ListsScheme::Baseline, 100);
        let a0 = l.pmd_addr(TileId(0), 0);
        let a1 = l.pmd_addr(TileId(1), 0);
        assert_eq!(a1.0 - a0.0, 64 * LINE_SIZE);
        // 16 PMDs per block, then the next block.
        assert_eq!(l.pmd_addr(TileId(0), 15).block(), a0.block());
        assert_eq!(l.pmd_addr(TileId(0), 16).block().0, a0.block().0 + 1);
    }

    #[test]
    fn interleaved_consecutive_tiles_are_consecutive_blocks() {
        let l = ListsLayout::new(ListsScheme::Interleaved, 100);
        let a0 = l.pmd_addr(TileId(0), 0);
        let a1 = l.pmd_addr(TileId(1), 0);
        assert_eq!(a1.0 - a0.0, LINE_SIZE);
        // Section 1 of tile 0 comes after every tile's section 0.
        let s1 = l.pmd_addr(TileId(0), 16);
        assert_eq!(s1.0 - a0.0, 100 * LINE_SIZE);
    }

    #[test]
    fn pmd_offsets_within_block() {
        let l = ListsLayout::new(ListsScheme::Interleaved, 10);
        assert_eq!(l.pmd_addr(TileId(3), 0).block_offset(), 0);
        assert_eq!(l.pmd_addr(TileId(3), 1).block_offset(), 4);
        assert_eq!(l.pmd_addr(TileId(3), 15).block_offset(), 60);
    }

    #[test]
    fn tile_of_block_roundtrip_both_schemes() {
        for scheme in [ListsScheme::Baseline, ListsScheme::Interleaved] {
            let l = ListsLayout::new(scheme, 37);
            for t in [0u32, 1, 17, 36] {
                for n in [0u32, 15, 16, 40] {
                    let b = l.pmd_block(TileId(t), n);
                    assert_eq!(l.tile_of_block(b), Some(TileId(t)), "{scheme:?} t{t} n{n}");
                }
            }
            assert_eq!(l.tile_of_block(BlockAddr(0)), None);
        }
    }

    #[test]
    #[should_panic(expected = "baseline list overflow")]
    fn baseline_overflow_panics() {
        let l = ListsLayout::new(ListsScheme::Baseline, 4);
        l.pmd_addr(TileId(0), 1024);
    }

    #[test]
    fn interleaved_has_no_hard_list_limit() {
        let l = ListsLayout::new(ListsScheme::Interleaved, 4);
        // 5000 > 1024: interleaving appends more sections.
        let a = l.pmd_addr(TileId(2), 5000);
        assert!(a.0 > bases::PB_LISTS);
    }

    #[test]
    fn footprints() {
        let b = ListsLayout::new(ListsScheme::Baseline, 10);
        assert_eq!(b.footprint_bytes(3), 10 * 64 * LINE_SIZE);
        let i = ListsLayout::new(ListsScheme::Interleaved, 10);
        assert_eq!(i.footprint_bytes(3), 10 * LINE_SIZE); // one section
        assert_eq!(i.footprint_bytes(17), 2 * 10 * LINE_SIZE); // two sections
    }

    #[test]
    fn attributes_consecutive_blocks() {
        let l = AttributesLayout::new(&[3, 1, 2]);
        assert_eq!(l.num_primitives(), 3);
        assert_eq!(l.attr_count(0), 3);
        assert_eq!(l.attr_addr(0, 0).0, bases::PB_ATTRIBUTES);
        assert_eq!(l.attr_addr(0, 2).0, bases::PB_ATTRIBUTES + 2 * LINE_SIZE);
        assert_eq!(l.attr_addr(1, 0).0, bases::PB_ATTRIBUTES + 3 * LINE_SIZE);
        assert_eq!(l.attr_addr(2, 1).0, bases::PB_ATTRIBUTES + 5 * LINE_SIZE);
        assert_eq!(l.footprint_bytes(), 6 * LINE_SIZE);
    }

    #[test]
    fn attributes_block_to_primitive() {
        let l = AttributesLayout::new(&[3, 1, 2]);
        for p in 0..3 {
            for k in 0..l.attr_count(p) {
                assert_eq!(l.primitive_of_block(l.attr_block(p, k)), Some(p));
            }
        }
        assert_eq!(l.primitive_of_block(BlockAddr(0)), None);
        let past_end = BlockAddr(bases::PB_ATTRIBUTES / LINE_SIZE + 6);
        assert_eq!(l.primitive_of_block(past_end), None);
    }

    #[test]
    #[should_panic(expected = "invalid attribute count")]
    fn zero_attr_count_panics() {
        AttributesLayout::new(&[0]);
    }

    #[test]
    fn first_attr_addr_is_primitive_id_surrogate() {
        let l = AttributesLayout::new(&[2, 2]);
        assert_eq!(l.first_attr_addr(1), l.attr_addr(1, 0));
    }
}
