//! The product of binning: which tiles each primitive overlaps, and the
//! per-tile primitive lists — plus the future-knowledge queries (OPT
//! Number, first use, last use) that the Polygon List Builder derives
//! "for free" while binning (§III.A).

use tcor_common::{PrimitiveId, TileId, TileRank, TraversalOrder};

/// One binned primitive: its attribute count and the traversal ranks of
/// every tile it overlaps, sorted ascending.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BinnedPrimitive {
    /// The primitive's identifier (its index in binning order).
    pub id: PrimitiveId,
    /// Number of attributes (1..=15).
    pub attr_count: u8,
    /// Ranks of overlapped tiles in traversal order (ascending, deduped).
    pub tile_ranks: Vec<TileRank>,
}

impl BinnedPrimitive {
    /// Rank of the first tile that will read this primitive — the OPT
    /// Number attached to the Polygon List Builder's *write* (§III.C.4).
    pub fn first_use(&self) -> TileRank {
        self.tile_ranks.first().copied().unwrap_or(TileRank::NEVER)
    }

    /// Rank of the last tile that will read this primitive — the dead-line
    /// tag for its PB-Attributes blocks (§III.D.1).
    pub fn last_use(&self) -> TileRank {
        self.tile_ranks.last().copied().unwrap_or(TileRank::NEVER)
    }

    /// The OPT Number for a read occurring at tile rank `at`: the rank of
    /// the *next* tile (strictly after `at`) that uses this primitive, or
    /// [`TileRank::NEVER`] when `at` is the last use.
    pub fn next_use_after(&self, at: TileRank) -> TileRank {
        match self.tile_ranks.binary_search(&at) {
            Ok(i) if i + 1 < self.tile_ranks.len() => self.tile_ranks[i + 1],
            Err(i) if i < self.tile_ranks.len() => self.tile_ranks[i],
            _ => TileRank::NEVER,
        }
    }

    /// Number of tiles the primitive overlaps (its re-use count).
    pub fn reuse(&self) -> usize {
        self.tile_ranks.len()
    }
}

/// A fully binned frame: per-primitive tile schedules and per-tile
/// primitive lists. This is the Parameter Buffer *content* (addresses come
/// from [`crate::layout`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BinnedFrame {
    num_tiles: usize,
    prims: Vec<BinnedPrimitive>,
    /// `tile_lists[tile.index()]` = primitives overlapping that tile, in
    /// binning (program) order — the PB-Lists content.
    tile_lists: Vec<Vec<PrimitiveId>>,
}

impl BinnedFrame {
    /// Assembles a binned frame.
    ///
    /// `prims` gives, per primitive in binning order, its attribute count
    /// and the tiles it overlaps (any order, duplicates ignored — a
    /// primitive appears in a given list at most once).
    ///
    /// # Panics
    ///
    /// Panics if an attribute count is outside `1..=15`, or a tile id is
    /// out of range, or a primitive overlaps no tiles (such primitives
    /// must be culled before binning).
    pub fn new(prims: &[(u8, Vec<TileId>)], order: &TraversalOrder) -> Self {
        let num_tiles = order.len();
        let mut tile_lists = vec![Vec::new(); num_tiles];
        let mut binned = Vec::with_capacity(prims.len());
        for (i, &(attr_count, ref tiles)) in prims.iter().enumerate() {
            assert!(
                (1..=crate::pmd::MAX_ATTRS).contains(&attr_count),
                "primitive {i} has invalid attribute count {attr_count}"
            );
            assert!(!tiles.is_empty(), "primitive {i} overlaps no tiles");
            let id = PrimitiveId(i as u32);
            let mut ranks: Vec<TileRank> = tiles
                .iter()
                .map(|&t| {
                    assert!(t.index() < num_tiles, "primitive {i}: {t:?} out of range");
                    order.rank_of(t)
                })
                .collect();
            ranks.sort_unstable();
            ranks.dedup();
            for &r in &ranks {
                tile_lists[order.tile_at(r).index()].push(id);
            }
            binned.push(BinnedPrimitive {
                id,
                attr_count,
                tile_ranks: ranks,
            });
        }
        BinnedFrame {
            num_tiles,
            prims: binned,
            tile_lists,
        }
    }

    /// Number of tiles in the frame.
    pub fn num_tiles(&self) -> usize {
        self.num_tiles
    }

    /// Number of primitives.
    pub fn num_primitives(&self) -> usize {
        self.prims.len()
    }

    /// The binned primitives, in binning order.
    pub fn primitives(&self) -> &[BinnedPrimitive] {
        &self.prims
    }

    /// One primitive by id.
    pub fn primitive(&self, id: PrimitiveId) -> &BinnedPrimitive {
        &self.prims[id.index()]
    }

    /// The primitive list of `tile`, in binning order.
    pub fn tile_list(&self, tile: TileId) -> &[PrimitiveId] {
        &self.tile_lists[tile.index()]
    }

    /// Per-primitive attribute counts (input to
    /// [`crate::layout::AttributesLayout`]).
    pub fn attr_counts(&self) -> Vec<u8> {
        self.prims.iter().map(|p| p.attr_count).collect()
    }

    /// Total (tile, primitive) binned pairs — the number of PMDs written.
    pub fn total_pmds(&self) -> usize {
        self.prims.iter().map(|p| p.reuse()).sum()
    }

    /// Length of the longest tile list.
    pub fn max_list_len(&self) -> usize {
        self.tile_lists.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Average tiles overlapped per primitive — Table II's "Avg Prim
    /// Re-use".
    pub fn avg_reuse(&self) -> f64 {
        if self.prims.is_empty() {
            0.0
        } else {
            self.total_pmds() as f64 / self.prims.len() as f64
        }
    }

    /// Total attribute count over all primitives.
    pub fn total_attrs(&self) -> usize {
        self.prims.iter().map(|p| p.attr_count as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcor_common::{TileGrid, Traversal};

    fn order_3x3() -> TraversalOrder {
        Traversal::Scanline.order(&TileGrid::new(96, 96, 32))
    }

    /// The paper's worked example (Fig. 9): 3 primitives, 9 tiles,
    /// scanline traversal. Prim 0 covers the left column (tiles 0,3,6),
    /// prim 1 the top-right (1,2), prim 2 the rest (4,5,7,8).
    fn example_frame() -> BinnedFrame {
        let t = |i: u32| TileId(i);
        BinnedFrame::new(
            &[
                (3, vec![t(0), t(3), t(6)]),
                (3, vec![t(1), t(2)]),
                (3, vec![t(4), t(5), t(7), t(8)]),
            ],
            &order_3x3(),
        )
    }

    #[test]
    fn example_tile_lists() {
        let f = example_frame();
        assert_eq!(f.tile_list(TileId(0)), &[PrimitiveId(0)]);
        assert_eq!(f.tile_list(TileId(2)), &[PrimitiveId(1)]);
        assert_eq!(f.tile_list(TileId(8)), &[PrimitiveId(2)]);
        assert_eq!(f.total_pmds(), 9);
        assert_eq!(f.max_list_len(), 1);
    }

    #[test]
    fn example_first_and_last_use() {
        let f = example_frame();
        // Scanline order: rank == tile id on a 3x3 grid.
        assert_eq!(f.primitive(PrimitiveId(0)).first_use(), TileRank(0));
        assert_eq!(f.primitive(PrimitiveId(0)).last_use(), TileRank(6));
        assert_eq!(f.primitive(PrimitiveId(1)).first_use(), TileRank(1));
        assert_eq!(f.primitive(PrimitiveId(2)).last_use(), TileRank(8));
    }

    #[test]
    fn example_opt_numbers() {
        let f = example_frame();
        let p0 = f.primitive(PrimitiveId(0));
        // Read at tile 0 -> next use is tile 3.
        assert_eq!(p0.next_use_after(TileRank(0)), TileRank(3));
        assert_eq!(p0.next_use_after(TileRank(3)), TileRank(6));
        assert_eq!(p0.next_use_after(TileRank(6)), TileRank::NEVER);
        // Query between uses (not itself an overlap) returns next above.
        assert_eq!(p0.next_use_after(TileRank(1)), TileRank(3));
        assert_eq!(p0.next_use_after(TileRank(7)), TileRank::NEVER);
    }

    #[test]
    fn reuse_statistics() {
        let f = example_frame();
        assert_eq!(f.avg_reuse(), 3.0);
        assert_eq!(f.total_attrs(), 9);
        assert_eq!(f.attr_counts(), vec![3, 3, 3]);
    }

    #[test]
    fn duplicate_tiles_are_deduped() {
        let order = order_3x3();
        let f = BinnedFrame::new(&[(2, vec![TileId(4), TileId(4), TileId(4)])], &order);
        assert_eq!(f.primitive(PrimitiveId(0)).reuse(), 1);
        assert_eq!(f.tile_list(TileId(4)).len(), 1);
    }

    #[test]
    fn lists_keep_binning_order() {
        let order = order_3x3();
        let f = BinnedFrame::new(
            &[
                (1, vec![TileId(0)]),
                (1, vec![TileId(0)]),
                (1, vec![TileId(0)]),
            ],
            &order,
        );
        assert_eq!(
            f.tile_list(TileId(0)),
            &[PrimitiveId(0), PrimitiveId(1), PrimitiveId(2)]
        );
    }

    #[test]
    #[should_panic(expected = "overlaps no tiles")]
    fn empty_overlap_panics() {
        BinnedFrame::new(&[(1, vec![])], &order_3x3());
    }

    #[test]
    #[should_panic(expected = "invalid attribute count")]
    fn bad_attr_count_panics() {
        BinnedFrame::new(&[(0, vec![TileId(0)])], &order_3x3());
    }

    #[test]
    fn ranks_follow_traversal_not_tile_ids() {
        // Z-order on a 4x4 grid: tile ids and ranks diverge.
        let grid = TileGrid::new(128, 128, 32);
        let order = Traversal::ZOrder.order(&grid);
        let a = grid.tile_id(2, 0); // id 2
        let b = grid.tile_id(1, 1); // id 5
                                    // In Z-order, (1,1) comes before (2,0).
        assert!(order.rank_of(b) < order.rank_of(a));
        let f = BinnedFrame::new(&[(1, vec![a, b])], &order);
        let p = f.primitive(PrimitiveId(0));
        assert_eq!(p.first_use(), order.rank_of(b));
        assert_eq!(p.last_use(), order.rank_of(a));
    }
}
