//! Primitive MetaData (PMD) word encodings.
//!
//! A PMD is the 4-byte record appended to a tile's list for every
//! primitive that overlaps the tile. The paper defines two encodings:
//!
//! * **Baseline (Fig. 3):** 26-bit Primitive ID + 4-bit attribute count
//!   (2 bits free).
//! * **TCOR (Fig. 6):** 16-bit Primitive ID + 4-bit attribute count +
//!   12-bit **OPT Number** — the traversal rank of the next tile that
//!   will use this primitive (the tile's own rank when there is none:
//!   §III.C.4 treats "equal" as "no later use" and bypasses).

/// Maximum attribute count a 4-bit field can carry.
pub const MAX_ATTRS: u8 = 15;

/// Baseline PMD: `[31:6] primitive id, [5:2] attr count, [1:0] free`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PmdBaseline {
    /// Primitive identifier (26 bits).
    pub primitive_id: u32,
    /// Number of attributes (4 bits).
    pub num_attributes: u8,
}

impl PmdBaseline {
    /// Packs into the 32-bit hardware word.
    ///
    /// # Panics
    ///
    /// Panics if a field exceeds its bit width.
    pub fn encode(self) -> u32 {
        assert!(
            self.primitive_id < (1 << 26),
            "primitive id exceeds 26 bits"
        );
        assert!(
            self.num_attributes <= MAX_ATTRS,
            "attr count exceeds 4 bits"
        );
        (self.primitive_id << 6) | ((self.num_attributes as u32) << 2)
    }

    /// Unpacks from the 32-bit hardware word.
    pub fn decode(word: u32) -> Self {
        PmdBaseline {
            primitive_id: word >> 6,
            num_attributes: ((word >> 2) & 0xF) as u8,
        }
    }
}

/// TCOR PMD: `[31:16] primitive id, [15:12] attr count, [11:0] OPT number`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PmdTcor {
    /// Primitive identifier (16 bits).
    pub primitive_id: u16,
    /// Number of attributes (4 bits).
    pub num_attributes: u8,
    /// OPT Number: traversal rank of the next tile using this primitive
    /// (12 bits).
    pub opt_number: u16,
}

impl PmdTcor {
    /// Packs into the 32-bit hardware word.
    ///
    /// # Panics
    ///
    /// Panics if a field exceeds its bit width.
    pub fn encode(self) -> u32 {
        assert!(
            self.num_attributes <= MAX_ATTRS,
            "attr count exceeds 4 bits"
        );
        assert!(self.opt_number < (1 << 12), "OPT number exceeds 12 bits");
        ((self.primitive_id as u32) << 16)
            | ((self.num_attributes as u32) << 12)
            | self.opt_number as u32
    }

    /// Unpacks from the 32-bit hardware word.
    pub fn decode(word: u32) -> Self {
        PmdTcor {
            primitive_id: (word >> 16) as u16,
            num_attributes: ((word >> 12) & 0xF) as u8,
            opt_number: (word & 0xFFF) as u16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_roundtrip() {
        let pmd = PmdBaseline {
            primitive_id: 0x3FF_FFFF,
            num_attributes: 15,
        };
        assert_eq!(PmdBaseline::decode(pmd.encode()), pmd);
        let zero = PmdBaseline {
            primitive_id: 0,
            num_attributes: 0,
        };
        assert_eq!(zero.encode(), 0);
    }

    #[test]
    fn tcor_roundtrip() {
        let pmd = PmdTcor {
            primitive_id: 0xFFFF,
            num_attributes: 15,
            opt_number: 0xFFF,
        };
        assert_eq!(PmdTcor::decode(pmd.encode()), pmd);
    }

    #[test]
    fn tcor_field_positions() {
        let pmd = PmdTcor {
            primitive_id: 1,
            num_attributes: 2,
            opt_number: 3,
        };
        assert_eq!(pmd.encode(), (1 << 16) | (2 << 12) | 3);
    }

    #[test]
    fn baseline_field_positions() {
        let pmd = PmdBaseline {
            primitive_id: 1,
            num_attributes: 3,
        };
        assert_eq!(pmd.encode(), (1 << 6) | (3 << 2));
    }

    #[test]
    #[should_panic(expected = "26 bits")]
    fn baseline_overflow_panics() {
        PmdBaseline {
            primitive_id: 1 << 26,
            num_attributes: 0,
        }
        .encode();
    }

    #[test]
    #[should_panic(expected = "12 bits")]
    fn opt_number_overflow_panics() {
        PmdTcor {
            primitive_id: 0,
            num_attributes: 0,
            opt_number: 1 << 12,
        }
        .encode();
    }

    #[test]
    fn exhaustive_roundtrip_over_small_fields() {
        for attrs in 0..=15u8 {
            for opt in [0u16, 1, 0x7FF, 0xFFF] {
                let pmd = PmdTcor {
                    primitive_id: 0xABCD,
                    num_attributes: attrs,
                    opt_number: opt,
                };
                assert_eq!(PmdTcor::decode(pmd.encode()), pmd);
            }
        }
    }
}
