//! Property tests on the Parameter Buffer layouts: address maps must be
//! injective and invertible — aliasing between two PMDs or attributes
//! would silently corrupt every simulation above them.

use proptest::prelude::*;
use tcor_common::TileId;
use tcor_pbuf::{AttributesLayout, ListsLayout, ListsScheme, PmdBaseline, PmdTcor};

proptest! {
    /// No two (tile, n) pairs map to the same PMD byte address, in either
    /// scheme.
    #[test]
    fn pmd_addresses_are_injective(
        pairs in proptest::collection::hash_set((0u32..64, 0u32..128), 2..40)
    ) {
        for scheme in [ListsScheme::Baseline, ListsScheme::Interleaved] {
            let l = ListsLayout::new(scheme, 64);
            let addrs: Vec<u64> = pairs
                .iter()
                .map(|&(t, n)| l.pmd_addr(TileId(t), n).0)
                .collect();
            let mut dedup = addrs.clone();
            dedup.sort_unstable();
            dedup.dedup();
            prop_assert_eq!(dedup.len(), addrs.len(), "{:?} aliased", scheme);
        }
    }

    /// `tile_of_block` inverts `pmd_block` for every in-range entry.
    #[test]
    fn tile_of_block_inverts_pmd_block(t in 0u32..97, n in 0u32..1024, tiles in 97u32..200) {
        for scheme in [ListsScheme::Baseline, ListsScheme::Interleaved] {
            let l = ListsLayout::new(scheme, tiles);
            let b = l.pmd_block(TileId(t), n);
            prop_assert_eq!(l.tile_of_block(b), Some(TileId(t)));
        }
    }

    /// `primitive_of_block` inverts `attr_block` for arbitrary attribute
    /// count vectors.
    #[test]
    fn primitive_of_block_inverts_attr_block(
        counts in proptest::collection::vec(1u8..=15, 1..50)
    ) {
        let l = AttributesLayout::new(&counts);
        for (p, &c) in counts.iter().enumerate() {
            for k in 0..c {
                prop_assert_eq!(l.primitive_of_block(l.attr_block(p, k)), Some(p));
            }
        }
        // Total footprint is exactly one block per attribute.
        let total: u64 = counts.iter().map(|&c| c as u64).sum();
        prop_assert_eq!(l.footprint_bytes(), total * 64);
    }

    /// PMD encodings round-trip for every in-range field combination.
    #[test]
    fn pmd_codecs_roundtrip(
        prim in 0u32..(1 << 26),
        attrs in 1u8..=15,
        opt in 0u16..(1 << 12)
    ) {
        let b = PmdBaseline { primitive_id: prim, num_attributes: attrs };
        prop_assert_eq!(PmdBaseline::decode(b.encode()), b);
        let t = PmdTcor {
            primitive_id: (prim & 0xFFFF) as u16,
            num_attributes: attrs,
            opt_number: opt,
        };
        prop_assert_eq!(PmdTcor::decode(t.encode()), t);
    }

    /// The interleaved layout's footprint never exceeds the baseline's
    /// for list lengths within the baseline's 1024 allotment — the whole
    /// point of §III.B.
    #[test]
    fn interleaved_footprint_never_larger(tiles in 1u32..300, max_len in 1u32..1024) {
        let b = ListsLayout::new(ListsScheme::Baseline, tiles);
        let i = ListsLayout::new(ListsScheme::Interleaved, tiles);
        prop_assert!(i.footprint_bytes(max_len) <= b.footprint_bytes(max_len));
    }
}
