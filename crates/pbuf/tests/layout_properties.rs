//! Property tests on the Parameter Buffer layouts: address maps must be
//! injective and invertible — aliasing between two PMDs or attributes
//! would silently corrupt every simulation above them.
//!
//! Inputs come from a seeded local PRNG (the workspace builds offline,
//! so no proptest); 256 cases per property, deterministic.

use std::collections::BTreeSet;
use tcor_common::{SmallRng, TileId};
use tcor_pbuf::{AttributesLayout, ListsLayout, ListsScheme, PmdBaseline, PmdTcor};

const CASES: usize = 256;

/// No two (tile, n) pairs map to the same PMD byte address, in either
/// scheme.
#[test]
fn pmd_addresses_are_injective() {
    let mut rng = SmallRng::seed_from_u64(0x9B0F_0001);
    for _case in 0..CASES {
        let mut pairs: BTreeSet<(u32, u32)> = BTreeSet::new();
        for _ in 0..rng.random_range(2..40usize) {
            pairs.insert((rng.random_range(0..64u32), rng.random_range(0..128u32)));
        }
        for scheme in [ListsScheme::Baseline, ListsScheme::Interleaved] {
            let l = ListsLayout::new(scheme, 64);
            let addrs: Vec<u64> = pairs
                .iter()
                .map(|&(t, n)| l.pmd_addr(TileId(t), n).0)
                .collect();
            let mut dedup = addrs.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), addrs.len(), "{scheme:?} aliased");
        }
    }
}

/// `tile_of_block` inverts `pmd_block` for every in-range entry.
#[test]
fn tile_of_block_inverts_pmd_block() {
    let mut rng = SmallRng::seed_from_u64(0x9B0F_0002);
    for _case in 0..CASES {
        let t = rng.random_range(0..97u32);
        let n = rng.random_range(0..1024u32);
        let tiles = rng.random_range(97..200u32);
        for scheme in [ListsScheme::Baseline, ListsScheme::Interleaved] {
            let l = ListsLayout::new(scheme, tiles);
            let b = l.pmd_block(TileId(t), n);
            assert_eq!(l.tile_of_block(b), Some(TileId(t)));
        }
    }
}

/// `primitive_of_block` inverts `attr_block` for arbitrary attribute
/// count vectors.
#[test]
fn primitive_of_block_inverts_attr_block() {
    let mut rng = SmallRng::seed_from_u64(0x9B0F_0003);
    for _case in 0..CASES {
        let counts: Vec<u8> = (0..rng.random_range(1..50usize))
            .map(|_| rng.random_range(1..16u32) as u8)
            .collect();
        let l = AttributesLayout::new(&counts);
        for (p, &c) in counts.iter().enumerate() {
            for k in 0..c {
                assert_eq!(l.primitive_of_block(l.attr_block(p, k)), Some(p));
            }
        }
        // Total footprint is exactly one block per attribute.
        let total: u64 = counts.iter().map(|&c| c as u64).sum();
        assert_eq!(l.footprint_bytes(), total * 64);
    }
}

/// PMD encodings round-trip for every in-range field combination.
#[test]
fn pmd_codecs_roundtrip() {
    let mut rng = SmallRng::seed_from_u64(0x9B0F_0004);
    for _case in 0..CASES {
        let prim = rng.random_range(0..(1u32 << 26));
        let attrs = rng.random_range(1..16u32) as u8;
        let opt = rng.random_range(0..(1u32 << 12)) as u16;
        let b = PmdBaseline {
            primitive_id: prim,
            num_attributes: attrs,
        };
        assert_eq!(PmdBaseline::decode(b.encode()), b);
        let t = PmdTcor {
            primitive_id: (prim & 0xFFFF) as u16,
            num_attributes: attrs,
            opt_number: opt,
        };
        assert_eq!(PmdTcor::decode(t.encode()), t);
    }
}

/// The interleaved layout's footprint never exceeds the baseline's
/// for list lengths within the baseline's 1024 allotment — the whole
/// point of §III.B.
#[test]
fn interleaved_footprint_never_larger() {
    let mut rng = SmallRng::seed_from_u64(0x9B0F_0005);
    for _case in 0..CASES {
        let tiles = rng.random_range(1..300u32);
        let max_len = rng.random_range(1..1024u32);
        let b = ListsLayout::new(ListsScheme::Baseline, tiles);
        let i = ListsLayout::new(ListsScheme::Interleaved, tiles);
        assert!(i.footprint_bytes(max_len) <= b.footprint_bytes(max_len));
    }
}
