//! Decoder-totality fuzzing for the TCPC0001 on-disk format.
//!
//! `body::decode` consumes bytes the process did not necessarily write
//! — a torn copy, a shared directory, a crashed writer — so every
//! buffer must come back as `Ok` or a typed [`DecodeError`], never a
//! panic. Seeded (fixed Xoshiro seeds) so failures reproduce exactly.

use tcor_common::Xoshiro256pp;
use tcor_pcache::body::{decode, DecodeError};
use tcor_pcache::{CacheKey, CachedBody};

fn key() -> CacheKey {
    CacheKey::new(0xFEED_BEEF_F00D, 0x51)
}

fn valid_encoding() -> Vec<u8> {
    CachedBody::text(
        "application/json",
        "{\"experiment\":\"fig10\",\"cells\":[1,2,3]}\n",
    )
    .encode(&key())
}

/// One seeded mutation pass: 1–4 edits, each a truncation, bit flip,
/// byte insertion, or byte removal at a random offset.
fn mutate(rng: &mut Xoshiro256pp, base: &[u8]) -> Vec<u8> {
    let mut buf = base.to_vec();
    let edits = 1 + rng.random_range(0..4u64) as usize;
    for _ in 0..edits {
        match rng.random_range(0..4u64) {
            0 if !buf.is_empty() => {
                let at = rng.random_range(0..buf.len() as u64) as usize;
                buf.truncate(at);
            }
            1 if !buf.is_empty() => {
                let at = rng.random_range(0..buf.len() as u64) as usize;
                buf[at] ^= 1 << rng.random_range(0..8u64);
            }
            2 => {
                let at = rng.random_range(0..buf.len() as u64 + 1) as usize;
                buf.insert(at, rng.random_range(0..256u64) as u8);
            }
            _ if !buf.is_empty() => {
                let at = rng.random_range(0..buf.len() as u64) as usize;
                buf.remove(at);
            }
            _ => {}
        }
    }
    buf
}

#[test]
fn mutated_entries_never_panic_and_only_identical_bytes_decode() {
    let original = valid_encoding();
    let reference = decode(&key(), &original).expect("valid encoding decodes");
    let mut rng = Xoshiro256pp::seed_from_u64(42);
    let mut variants_hit = std::collections::BTreeSet::new();
    for _ in 0..4000 {
        let fuzzed = mutate(&mut rng, &original);
        match decode(&key(), &fuzzed) {
            // Edits can cancel (insert+remove); a buffer that decodes
            // must be byte-identical to the original — anything else
            // would be an integrity-hash collision slipping corrupt
            // bytes through.
            Ok(body) => {
                assert_eq!(fuzzed, original, "non-identical bytes decoded Ok");
                assert_eq!(body, reference);
            }
            Err(e) => {
                variants_hit.insert(format!("{e:?}"));
            }
        }
    }
    // The typed-error surface is really exercised, not just one
    // catch-all path.
    assert!(
        variants_hit.len() >= 3,
        "expected ≥3 distinct DecodeError variants, saw {variants_hit:?}"
    );
}

#[test]
fn random_buffers_never_panic() {
    let mut rng = Xoshiro256pp::seed_from_u64(4242);
    for _ in 0..4000 {
        let len = rng.random_range(0..512u64) as usize;
        let buf: Vec<u8> = (0..len)
            .map(|_| rng.random_range(0..256u64) as u8)
            .collect();
        let _ = decode(&key(), buf.as_slice());
    }
}

/// Field-targeted corruption maps to the right typed error, in check
/// order: magic, identity, version, lengths, payload hash.
#[test]
fn targeted_corruption_yields_the_matching_variant() {
    let original = valid_encoding();

    let mut bad_magic = original.clone();
    bad_magic[0] ^= 0xFF;
    assert_eq!(decode(&key(), &bad_magic), Err(DecodeError::BadMagic));

    let mut wrong_identity = original.clone();
    wrong_identity[8] ^= 0x01;
    assert_eq!(
        decode(&key(), &wrong_identity),
        Err(DecodeError::IdentityMismatch)
    );

    let mut stale_version = original.clone();
    stale_version[16] ^= 0x01;
    assert_eq!(
        decode(&key(), &stale_version),
        Err(DecodeError::VersionMismatch)
    );

    let mut huge_content_type = original.clone();
    huge_content_type[24..28].copy_from_slice(&u32::MAX.to_le_bytes());
    assert_eq!(
        decode(&key(), &huge_content_type),
        Err(DecodeError::BadContentType)
    );

    let mut huge_payload = original.clone();
    huge_payload[28..36].copy_from_slice(&u64::MAX.to_le_bytes());
    assert_eq!(decode(&key(), &huge_payload), Err(DecodeError::Truncated));

    let mut flipped_payload = original.clone();
    let last = flipped_payload.len() - 1;
    flipped_payload[last] ^= 0x01;
    assert_eq!(
        decode(&key(), &flipped_payload),
        Err(DecodeError::HashMismatch)
    );

    assert_eq!(decode(&key(), &original[..20]), Err(DecodeError::Truncated));
}
