//! Crash, corruption and concurrency behavior of the persistent tier.
//!
//! These are the negative paths the crate exists for: a restarted
//! process must serve exactly the bytes it persisted, and anything
//! less than exact — truncation, bit rot, a stale build's entries, a
//! torn index, a sibling process scribbling in the same directory —
//! must be evicted and recomputed, never served.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use tcor_pcache::{CacheKey, CachedBody, ResultCache, Tier, TieredCache};

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tcor-pcache-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open(dir: &Path) -> TieredCache {
    TieredCache::open(8, Some((dir.to_path_buf(), 1 << 20))).expect("open cache dir")
}

fn body(text: &str) -> Arc<CachedBody> {
    Arc::new(CachedBody::text("application/json", text))
}

fn object_path(dir: &Path, key: &CacheKey) -> PathBuf {
    dir.join(format!("{}.tcpc", key.file_stem()))
}

#[test]
fn restart_serves_byte_identical_results_from_disk() {
    let dir = tmp("restart");
    let keys: Vec<CacheKey> = (1..=5).map(|id| CacheKey::new(id, 0xC0DE)).collect();
    let payloads: Vec<String> = keys
        .iter()
        .map(|k| format!("{{\"identity\":{},\"rows\":[1,2,3]}}\n", k.identity))
        .collect();
    {
        let cache = open(&dir);
        for (k, p) in keys.iter().zip(&payloads) {
            cache.put(k, &body(p));
        }
    } // process one "dies"; Drop persists the index
    let cache = open(&dir);
    let (valid, evicted) = cache.warm_start(0xC0DE);
    assert_eq!((valid, evicted), (5, 0));
    for (k, p) in keys.iter().zip(&payloads) {
        let (got, tier) = cache.get(k).expect("survives restart");
        assert_eq!(tier, Tier::Disk, "first post-restart hit is the disk tier");
        assert_eq!(got.bytes, p.as_bytes(), "byte-identical across restart");
        assert_eq!(got.content_type, "application/json");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_entry_is_evicted_and_request_goes_cold() {
    let dir = tmp("corrupt");
    let key = CacheKey::new(0x11, 1);
    open(&dir).put(&key, &body("{\"trusted\":true}"));
    // Bit-rot one payload byte on disk.
    let path = object_path(&dir, &key);
    let mut raw = std::fs::read(&path).unwrap();
    let last = raw.len() - 1;
    raw[last] ^= 0x40;
    std::fs::write(&path, &raw).unwrap();

    let cache = open(&dir);
    assert!(cache.get(&key).is_none(), "corrupt bytes are never served");
    let stats = cache.stats();
    assert_eq!(stats.evicted_corrupt, 1, "typed eviction counter");
    assert!(!path.exists(), "offending file deleted");
    // The recomputed result repopulates cleanly.
    cache.put(&key, &body("{\"trusted\":true}"));
    assert!(cache.get(&key).is_some());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_entry_is_evicted_not_served() {
    let dir = tmp("trunc");
    let key = CacheKey::new(0x22, 1);
    open(&dir).put(&key, &body("{\"rows\":[4,5,6,7,8,9]}"));
    let path = object_path(&dir, &key);
    let raw = std::fs::read(&path).unwrap();
    std::fs::write(&path, &raw[..raw.len() / 2]).unwrap(); // torn write
    let cache = open(&dir);
    assert!(cache.get(&key).is_none());
    assert_eq!(cache.stats().evicted_corrupt, 1);
    assert!(!path.exists());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn version_mismatch_is_evicted_with_its_own_counter() {
    let dir = tmp("stale");
    let old = CacheKey::new(0x33, 100);
    open(&dir).put(&old, &body("{\"built_by\":\"v100\"}"));
    let cache = open(&dir);
    // Same computation, newer build.
    let new = CacheKey::new(0x33, 101);
    assert!(cache.get(&new).is_none(), "stale build output not served");
    let stats = cache.stats();
    assert_eq!(
        (stats.evicted_version, stats.evicted_corrupt),
        (1, 0),
        "staleness and corruption are distinct counters"
    );
    assert!(
        !object_path(&dir, &new).exists(),
        "stale entry reclaimed, not leaked"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn foreign_garbage_in_the_cache_dir_is_ignored() {
    let dir = tmp("foreign");
    let key = CacheKey::new(0x44, 1);
    open(&dir).put(&key, &body("real"));
    std::fs::write(dir.join("README.txt"), b"not a cache entry").unwrap();
    std::fs::write(dir.join("zzzz.tcpc"), b"short").unwrap(); // bad stem
    let cache = open(&dir);
    assert!(cache.get(&key).is_some());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite 6: two handles over one directory — the "two daemons,
/// one --cache-dir" scenario. Last-writer-wins must never serve
/// corrupt or mixed bytes, and each side must observe the other's
/// completed writes via the path probe.
#[test]
fn two_processes_sharing_a_dir_stay_consistent() {
    let dir = tmp("shared");
    let a = open(&dir);
    let b = open(&dir); // second "daemon", its own index view

    // A writes; B — whose index never saw it — finds it by path probe.
    let key = CacheKey::new(0x55, 1);
    a.put(&key, &body("from-a"));
    let (got, tier) = b.get(&key).expect("cross-process visibility");
    assert_eq!(
        (got.bytes.as_slice(), tier),
        (b"from-a".as_slice(), Tier::Disk)
    );

    // Both race interleaved writes over the same keys; whichever wins,
    // every subsequent read must be one writer's intact bytes.
    for round in 0..10u64 {
        let k = CacheKey::new(0x100 + round % 3, 1);
        a.put(&k, &body(&format!("a-{round}")));
        b.put(&k, &body(&format!("b-{round}")));
    }
    let c = open(&dir); // fresh third view, trusts only the disk
    for id in 0x100..0x103u64 {
        let k = CacheKey::new(id, 1);
        let (got, _) = c.get(&k).expect("entry present and valid");
        let text = String::from_utf8(got.bytes.clone()).unwrap();
        assert!(
            text.starts_with("a-") || text.starts_with("b-"),
            "bytes are one writer's, whole: {text}"
        );
    }
    assert_eq!(c.stats().evicted_corrupt, 0, "no torn entries created");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Threaded hammering of one shared directory from two handles —
/// the closest a unit test gets to two daemons under load.
#[test]
fn concurrent_handles_hammering_shared_dir_never_corrupt() {
    let dir = tmp("hammer");
    let a = Arc::new(open(&dir));
    let b = Arc::new(open(&dir));
    let mut threads = Vec::new();
    for (tag, cache) in [("a", Arc::clone(&a)), ("b", Arc::clone(&b))] {
        threads.push(std::thread::spawn(move || {
            for i in 0..50u64 {
                let k = CacheKey::new(i % 7, 1);
                cache.put(&k, &body(&format!("{tag}-{i}")));
                if let Some((got, _)) = cache.get(&k) {
                    let text = String::from_utf8(got.bytes.clone()).unwrap();
                    assert!(
                        text.starts_with("a-") || text.starts_with("b-"),
                        "read tore: {text}"
                    );
                }
            }
        }));
    }
    for t in threads {
        t.join().unwrap();
    }
    let fresh = open(&dir);
    let (valid, evicted) = fresh.warm_start(1);
    assert_eq!(evicted, 0, "no entry failed validation after the race");
    assert!(valid > 0);
    let _ = std::fs::remove_dir_all(&dir);
}
