//! The cached payload and its self-validating on-disk encoding.
//!
//! Every disk entry is one file that carries everything needed to
//! prove it is the right bytes for the requested key:
//!
//! ```text
//! offset  size  field
//!      0     8  magic  "TCPC0001"
//!      8     8  identity hash (LE)        — must match the key
//!     16     8  version hash (LE)         — must match the key
//!     24     4  content-type length (LE)
//!     28     8  payload length (LE)
//!     36     8  integrity hash (LE)       — fxhash64(content-type ‖ payload)
//!     44     …  content-type bytes, then payload bytes
//! ```
//!
//! Decoding is total: every failure mode (short file, bad magic, wrong
//! identity, stale version, hash mismatch) is a distinct
//! [`DecodeError`] variant so the disk tier can count *why* an entry
//! was evicted. A truncated file — the crash case atomic writes are
//! supposed to prevent, but which a shared directory or a torn copy
//! can still produce — fails as [`DecodeError::Truncated`] before any
//! field is trusted.

use crate::key::CacheKey;
use tcor_common::fxhash64;

/// On-disk format magic; bump the trailing digits on layout changes.
const MAGIC: &[u8; 8] = b"TCPC0001";
/// Fixed header length in bytes.
const HEADER: usize = 44;
/// Largest accepted content-type, a sanity bound against corruption
/// that happens to pass the magic check.
const MAX_CONTENT_TYPE: u32 = 4096;

/// A cached result: a media type and the rendered bytes.
///
/// The serve plane stores rendered response bodies (JSON/CSV text);
/// the runner stores any artifact it can encode to bytes. The payload
/// is deliberately `Vec<u8>`, not `String` — integrity is byte
/// identity, not text identity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CachedBody {
    /// `Content-Type` of the payload ("application/json").
    pub content_type: String,
    /// The result bytes.
    pub bytes: Vec<u8>,
}

impl CachedBody {
    /// A body over UTF-8 text.
    pub fn text(content_type: impl Into<String>, body: impl Into<String>) -> Self {
        CachedBody {
            content_type: content_type.into(),
            bytes: body.into().into_bytes(),
        }
    }

    /// Payload size in bytes (what the disk budget charges).
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// The integrity hash stored alongside the payload.
    pub fn integrity_hash(&self) -> u64 {
        let mut buf = Vec::with_capacity(self.content_type.len() + self.bytes.len());
        buf.extend_from_slice(self.content_type.as_bytes());
        buf.extend_from_slice(&self.bytes);
        fxhash64(&buf)
    }

    /// Serializes the entry for `key` in the on-disk format.
    pub fn encode(&self, key: &CacheKey) -> Vec<u8> {
        let ct = self.content_type.as_bytes();
        let mut out = Vec::with_capacity(HEADER + ct.len() + self.bytes.len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&key.identity.to_le_bytes());
        out.extend_from_slice(&key.version.to_le_bytes());
        out.extend_from_slice(&(ct.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.bytes.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.integrity_hash().to_le_bytes());
        out.extend_from_slice(ct);
        out.extend_from_slice(&self.bytes);
        out
    }
}

/// Why a disk entry failed validation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// File shorter than its own declared layout.
    Truncated,
    /// Magic bytes wrong — not a cache entry (or a different layout).
    BadMagic,
    /// Entry belongs to a different identity than the requested key.
    IdentityMismatch,
    /// Entry was written by a different code version.
    VersionMismatch,
    /// Payload bytes do not match the recorded integrity hash.
    HashMismatch,
    /// Content-type is not UTF-8 or exceeds the sanity bound.
    BadContentType,
}

fn le_u64(raw: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(raw[at..at + 8].try_into().expect("8-byte field"))
}

/// Decodes and fully validates an entry read for `key`.
///
/// # Errors
///
/// A [`DecodeError`] naming the first failed check; nothing about the
/// buffer is trusted until every check has passed.
pub fn decode(key: &CacheKey, raw: &[u8]) -> Result<CachedBody, DecodeError> {
    if raw.len() < HEADER {
        return Err(DecodeError::Truncated);
    }
    if &raw[..8] != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    if le_u64(raw, 8) != key.identity {
        return Err(DecodeError::IdentityMismatch);
    }
    if le_u64(raw, 16) != key.version {
        return Err(DecodeError::VersionMismatch);
    }
    let ct_len = u32::from_le_bytes(raw[24..28].try_into().expect("4-byte field"));
    if ct_len > MAX_CONTENT_TYPE {
        return Err(DecodeError::BadContentType);
    }
    let payload_len = le_u64(raw, 28) as usize;
    let recorded_hash = le_u64(raw, 36);
    let ct_end = HEADER + ct_len as usize;
    let Some(expected_total) = ct_end.checked_add(payload_len) else {
        return Err(DecodeError::Truncated);
    };
    if raw.len() != expected_total {
        return Err(DecodeError::Truncated);
    }
    let content_type = std::str::from_utf8(&raw[HEADER..ct_end])
        .map_err(|_| DecodeError::BadContentType)?
        .to_string();
    let body = CachedBody {
        content_type,
        bytes: raw[ct_end..].to_vec(),
    };
    if body.integrity_hash() != recorded_hash {
        return Err(DecodeError::HashMismatch);
    }
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> CacheKey {
        CacheKey::new(0xFEED_BEEF, 0x51)
    }

    fn body() -> CachedBody {
        CachedBody::text("application/json", "{\"ok\":true}\n")
    }

    #[test]
    fn roundtrips() {
        let raw = body().encode(&key());
        assert_eq!(decode(&key(), &raw).unwrap(), body());
    }

    #[test]
    fn every_truncation_point_is_rejected_not_panicked() {
        let raw = body().encode(&key());
        for len in 0..raw.len() {
            let err = decode(&key(), &raw[..len]).unwrap_err();
            assert!(
                matches!(err, DecodeError::Truncated | DecodeError::BadMagic),
                "prefix of {len} bytes gave {err:?}"
            );
        }
        // Trailing garbage is also a length mismatch, not served.
        let mut long = raw.clone();
        long.push(0);
        assert_eq!(decode(&key(), &long), Err(DecodeError::Truncated));
    }

    #[test]
    fn corruption_is_caught_by_the_integrity_hash() {
        let mut raw = body().encode(&key());
        let last = raw.len() - 1;
        raw[last] ^= 0x01; // flip one payload bit
        assert_eq!(decode(&key(), &raw), Err(DecodeError::HashMismatch));
    }

    #[test]
    fn wrong_identity_and_stale_version_are_distinct_errors() {
        let raw = body().encode(&key());
        let other = CacheKey::new(key().identity + 1, key().version);
        assert_eq!(decode(&other, &raw), Err(DecodeError::IdentityMismatch));
        let newer = CacheKey::new(key().identity, key().version + 1);
        assert_eq!(decode(&newer, &raw), Err(DecodeError::VersionMismatch));
    }

    #[test]
    fn foreign_file_is_bad_magic() {
        assert_eq!(
            decode(
                &key(),
                b"not a cache entry at all, sorry; long enough to clear the header check"
            ),
            Err(DecodeError::BadMagic)
        );
    }

    #[test]
    fn empty_payload_roundtrips() {
        let empty = CachedBody::text("text/plain; charset=utf-8", "");
        let raw = empty.encode(&key());
        assert_eq!(decode(&key(), &raw).unwrap(), empty);
        assert!(empty.is_empty());
    }
}
