//! Disk-tier circuit breaker.
//!
//! The disk tier is an accelerator: every I/O failure already degrades
//! to a miss, but a *dying* disk (every read erroring, every write
//! timing out) would still tax each request with a doomed syscall. The
//! breaker bounds that tax with the classic three-state machine:
//!
//! * **Closed** — normal service. Consecutive I/O errors are counted;
//!   reaching the threshold trips the breaker **Open**.
//! * **Open** — disk operations are skipped outright (counted, not
//!   attempted) until a cooldown elapses.
//! * **Half-open** — after the cooldown, exactly one *probe* operation
//!   is let through. Success closes the breaker; failure re-opens it
//!   for another cooldown.
//!
//! A miss without an I/O error (file absent, entry stale) is a
//! *success* for the breaker — the disk answered, just not with a
//! body. While any state other than Closed is active the owning cache
//! reports itself `degraded`, which the serve plane surfaces in
//! `/health` and `/metrics`.

use std::time::{Duration, Instant};

/// Breaker tuning: how many consecutive I/O errors trip it and how
/// long it stays open before probing.
#[derive(Clone, Copy, Debug)]
pub struct BreakerConfig {
    /// Consecutive I/O errors that trip Closed → Open.
    pub threshold: u32,
    /// How long Open lasts before a half-open probe is allowed.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            threshold: 5,
            cooldown: Duration::from_secs(1),
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum State {
    Closed,
    Open,
    HalfOpen,
}

struct Inner {
    state: State,
    consecutive: u32,
    opened_at: Instant,
    probe_in_flight: bool,
    opens: u64,
    closes: u64,
    probes: u64,
    skipped: u64,
}

/// The three-state breaker; internally synchronized, shared by every
/// worker touching the disk tier.
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    inner: std::sync::Mutex<Inner>,
}

/// Counter/state snapshot for metrics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BreakerSnapshot {
    /// 0 = closed, 1 = half-open, 2 = open.
    pub state: u64,
    /// Times the breaker tripped open (including probe failures).
    pub opens: u64,
    /// Times a successful probe closed it again.
    pub closes: u64,
    /// Half-open probe operations attempted.
    pub probes: u64,
    /// Disk operations skipped while open / probing.
    pub skipped: u64,
}

impl CircuitBreaker {
    /// A closed breaker with `cfg` tuning.
    pub fn new(cfg: BreakerConfig) -> Self {
        CircuitBreaker {
            cfg: BreakerConfig {
                threshold: cfg.threshold.max(1),
                cooldown: cfg.cooldown,
            },
            inner: std::sync::Mutex::new(Inner {
                state: State::Closed,
                consecutive: 0,
                opened_at: Instant::now(),
                probe_in_flight: false,
                opens: 0,
                closes: 0,
                probes: 0,
                skipped: 0,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Asks permission for one disk operation. `false` means skip it
    /// (and the skip has been counted). A `true` answer obliges the
    /// caller to report the outcome via [`record`].
    ///
    /// [`record`]: CircuitBreaker::record
    pub fn allow(&self) -> bool {
        let mut s = self.lock();
        match s.state {
            State::Closed => true,
            State::Open => {
                if s.opened_at.elapsed() >= self.cfg.cooldown {
                    s.state = State::HalfOpen;
                    s.probe_in_flight = true;
                    s.probes += 1;
                    true
                } else {
                    s.skipped += 1;
                    false
                }
            }
            State::HalfOpen => {
                if s.probe_in_flight {
                    s.skipped += 1;
                    false
                } else {
                    s.probe_in_flight = true;
                    s.probes += 1;
                    true
                }
            }
        }
    }

    /// Reports the outcome of an allowed operation: `io_error = true`
    /// counts toward tripping (or re-opens a half-open breaker);
    /// `false` resets the streak (and closes a half-open breaker).
    pub fn record(&self, io_error: bool) {
        let mut s = self.lock();
        match s.state {
            State::Closed => {
                if io_error {
                    s.consecutive += 1;
                    if s.consecutive >= self.cfg.threshold {
                        s.state = State::Open;
                        s.opened_at = Instant::now();
                        s.opens += 1;
                    }
                } else {
                    s.consecutive = 0;
                }
            }
            State::HalfOpen => {
                s.probe_in_flight = false;
                if io_error {
                    s.state = State::Open;
                    s.opened_at = Instant::now();
                    s.opens += 1;
                } else {
                    s.state = State::Closed;
                    s.consecutive = 0;
                    s.closes += 1;
                }
            }
            // An operation admitted before the trip may report late;
            // the open timer already covers it.
            State::Open => {}
        }
    }

    /// Whether the breaker is anything other than Closed.
    pub fn degraded(&self) -> bool {
        self.lock().state != State::Closed
    }

    /// Counter/state snapshot.
    pub fn snapshot(&self) -> BreakerSnapshot {
        let s = self.lock();
        BreakerSnapshot {
            state: match s.state {
                State::Closed => 0,
                State::HalfOpen => 1,
                State::Open => 2,
            },
            opens: s.opens,
            closes: s.closes,
            probes: s.probes,
            skipped: s.skipped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(threshold: u32, cooldown_ms: u64) -> BreakerConfig {
        BreakerConfig {
            threshold,
            cooldown: Duration::from_millis(cooldown_ms),
        }
    }

    #[test]
    fn trips_after_consecutive_errors_only() {
        let b = CircuitBreaker::new(cfg(3, 60_000));
        for _ in 0..2 {
            assert!(b.allow());
            b.record(true);
        }
        // A success resets the streak.
        assert!(b.allow());
        b.record(false);
        for _ in 0..2 {
            assert!(b.allow());
            b.record(true);
        }
        assert!(!b.degraded(), "2 errors after a reset: still closed");
        assert!(b.allow());
        b.record(true);
        assert!(b.degraded(), "3rd consecutive error trips");
        assert_eq!(b.snapshot().state, 2);
        assert_eq!(b.snapshot().opens, 1);
        assert!(!b.allow(), "open: operations are skipped");
        assert_eq!(b.snapshot().skipped, 1);
    }

    #[test]
    fn half_open_probe_closes_on_success() {
        let b = CircuitBreaker::new(cfg(1, 10));
        assert!(b.allow());
        b.record(true);
        assert!(!b.allow(), "cooldown not elapsed");
        std::thread::sleep(Duration::from_millis(20));
        assert!(b.allow(), "cooldown elapsed: probe admitted");
        assert_eq!(b.snapshot().state, 1, "half-open while probing");
        assert!(!b.allow(), "only one probe in flight");
        b.record(false);
        let snap = b.snapshot();
        assert_eq!((snap.state, snap.closes, snap.probes), (0, 1, 1));
        assert!(!b.degraded());
    }

    #[test]
    fn half_open_probe_reopens_on_failure() {
        let b = CircuitBreaker::new(cfg(1, 5));
        assert!(b.allow());
        b.record(true);
        std::thread::sleep(Duration::from_millis(10));
        assert!(b.allow());
        b.record(true);
        let snap = b.snapshot();
        assert_eq!((snap.state, snap.opens), (2, 2), "probe failure re-opens");
        std::thread::sleep(Duration::from_millis(10));
        assert!(b.allow());
        b.record(false);
        assert_eq!(b.snapshot().state, 0, "second probe succeeds and closes");
    }
}
