//! The cross-session disk tier.
//!
//! Layout: one self-validating object file per entry
//! (`<identity-hex>.tcpc`, the [`crate::body`] format) plus a
//! human-readable `index.tsv` caching sizes, recency and payload
//! hashes. The object files are the truth; the index is an
//! accelerator:
//!
//! * every object write goes through `tcor_common::write_atomic_unique`
//!   (per-process, per-call staging names), so a crash can strand a
//!   `*.tmp` sibling but never a half-written entry, and two processes
//!   staging the same object never interleave inside one tmp file;
//! * the index is itself rewritten atomically, and `open` *reconciles*
//!   it against a directory scan — entries on disk but missing from
//!   the index are adopted (validated on first use), index lines whose
//!   file is gone are dropped, and a malformed or truncated index (a
//!   torn copy, a sibling process's partial state) degrades to the
//!   scan, never to an error;
//! * a lookup that misses the in-memory index probes the object path
//!   directly, so entries written by a *concurrent* process sharing
//!   the directory are found without coordination.
//!
//! Sharing discipline is last-writer-wins with re-validation: two
//! daemons (or a daemon and a CLI run) pointed at one `--cache-dir`
//! may interleave freely. Atomic renames keep every object either
//! whole-old or whole-new; whichever index lands last simply loses the
//! other writer's recency hints, which the next reconcile/probe
//! recovers. Nothing is ever *served* on trust — every load
//! re-validates magic, identity, version and integrity hash, and a
//! failed check evicts the file and reports a miss.
//!
//! Eviction: the byte budget counts whole object files; a put that
//! would exceed it evicts least-recently-used entries first (their
//! recency is a logical clock persisted in the index, bumped on every
//! hit). A payload larger than the entire budget is refused and
//! counted, not silently dropped.

use crate::body::{decode, CachedBody, DecodeError};
use crate::key::CacheKey;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use tcor_common::{fault, write_atomic_unique, FaultInjector, TcorError, TcorResult};

/// Object file extension.
const OBJ_EXT: &str = "tcpc";
/// Index file name and its header line.
const INDEX_FILE: &str = "index.tsv";
const INDEX_HEADER: &str = "tcor-pcache-index v1";

/// What the index remembers about one object file.
#[derive(Clone, Copy, Debug)]
struct EntryMeta {
    /// Whole-file size in bytes (what the budget charges).
    size: u64,
    /// Logical last-use tick (higher = more recent).
    last_used: u64,
    /// Payload integrity hash; 0 = not yet validated (scan adoption).
    payload_hash: u64,
    /// Version hash the entry was written under; 0 = unknown.
    version: u64,
}

#[derive(Default)]
struct Counters {
    hits: u64,
    puts: u64,
    dedup_puts: u64,
    evicted_size: u64,
    evicted_corrupt: u64,
    evicted_version: u64,
    io_errors: u64,
    oversize_puts: u64,
}

struct DiskState {
    entries: HashMap<u64, EntryMeta>,
    clock: u64,
    total_bytes: u64,
    counters: Counters,
}

/// The persistent tier over one cache directory.
pub struct DiskTier {
    dir: PathBuf,
    budget: u64,
    /// Hermetic fault injector for tests; `None` defers to the
    /// process-wide `tcor_common::fault` injector (the chaos harness).
    injector: Option<Arc<FaultInjector>>,
    state: Mutex<DiskState>,
}

/// Outcome of a disk lookup, with eviction reasons surfaced so the
/// composition can count them.
enum Loaded {
    Hit(CachedBody),
    Miss,
}

impl DiskTier {
    /// Opens (creating if needed) the cache directory with `budget`
    /// bytes of object storage, loading and reconciling the index.
    ///
    /// # Errors
    ///
    /// An I/O error if the directory cannot be created or scanned; a
    /// malformed *index* is never an error (it is rebuilt from the
    /// scan).
    pub fn open(dir: impl AsRef<Path>, budget: u64) -> TcorResult<Self> {
        let dir = dir.as_ref().to_path_buf();
        if fault::fire("pcache/open").is_some() {
            return Err(TcorError::io(
                format!("opening cache dir {}", dir.display()),
                std::io::Error::other("injected fault at pcache/open"),
            ));
        }
        std::fs::create_dir_all(&dir)
            .map_err(|e| TcorError::io(format!("creating cache dir {}", dir.display()), e))?;
        let mut entries = load_index(&dir.join(INDEX_FILE));
        reconcile(&dir, &mut entries)?;
        let clock = entries.values().map(|m| m.last_used).max().unwrap_or(0) + 1;
        let total_bytes = entries.values().map(|m| m.size).sum();
        Ok(DiskTier {
            dir,
            budget: budget.max(1),
            injector: None,
            state: Mutex::new(DiskState {
                entries,
                clock,
                total_bytes,
                counters: Counters::default(),
            }),
        })
    }

    /// Attaches a hermetic fault injector (tests); without one, the
    /// process-wide `tcor_common::fault` injector governs.
    pub fn with_fault_injector(mut self, injector: Arc<FaultInjector>) -> Self {
        self.injector = Some(injector);
        self
    }

    /// Asks the owning injector (instance, else global) about `point`.
    fn fault(&self, point: &str) -> Option<u64> {
        match &self.injector {
            Some(injector) => injector.fire(point),
            None => fault::fire(point),
        }
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configured byte budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    fn object_path(&self, identity: u64) -> PathBuf {
        self.dir.join(format!("{identity:016x}.{OBJ_EXT}"))
    }

    fn lock(&self) -> MutexGuard<'_, DiskState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn remove_entry(st: &mut DiskState, identity: u64) {
        if let Some(meta) = st.entries.remove(&identity) {
            st.total_bytes = st.total_bytes.saturating_sub(meta.size);
        }
    }

    /// Reads, validates and classifies one object file. Invalid
    /// entries are deleted from disk and dropped from the index.
    /// The second return is `true` when an I/O error occurred (the
    /// breaker's failure signal — a clean miss is *not* one).
    fn load(&self, st: &mut DiskState, key: &CacheKey) -> (Loaded, bool) {
        let path = self.object_path(key.identity);
        if self.fault("pcache/read").is_some() {
            st.counters.io_errors += 1;
            return (Loaded::Miss, true);
        }
        let raw = match std::fs::read(&path) {
            Ok(raw) => raw,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                // A sibling process evicted it (or it never existed).
                Self::remove_entry(st, key.identity);
                return (Loaded::Miss, false);
            }
            Err(_) => {
                st.counters.io_errors += 1;
                return (Loaded::Miss, true);
            }
        };
        // A short read hands the decoder a strict prefix: it must
        // classify the entry Truncated, which evicts it below.
        let raw = match self.fault("pcache/short_read") {
            Some(keep) => raw[..(keep as usize).min(raw.len().saturating_sub(1))].to_vec(),
            None => raw,
        };
        match decode(key, &raw) {
            Ok(body) => {
                let size = raw.len() as u64;
                st.clock += 1;
                let tick = st.clock;
                let prev = st.entries.insert(
                    key.identity,
                    EntryMeta {
                        size,
                        last_used: tick,
                        payload_hash: body.integrity_hash(),
                        version: key.version,
                    },
                );
                st.total_bytes = st.total_bytes - prev.map_or(0, |m| m.size) + size;
                (Loaded::Hit(body), false)
            }
            Err(e) => {
                match e {
                    DecodeError::VersionMismatch => st.counters.evicted_version += 1,
                    _ => st.counters.evicted_corrupt += 1,
                }
                Self::remove_entry(st, key.identity);
                let _ = std::fs::remove_file(&path);
                (Loaded::Miss, false)
            }
        }
    }

    /// Looks up `key`; a hit bumps its recency. Entries unknown to the
    /// index are probed on disk (a sibling process may have written
    /// them); entries that fail validation are evicted and missed.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<CachedBody>> {
        self.get_checked(key).0
    }

    /// [`get`](DiskTier::get), also reporting whether an I/O error
    /// occurred — the circuit breaker's failure signal.
    pub fn get_checked(&self, key: &CacheKey) -> (Option<Arc<CachedBody>>, bool) {
        let mut st = self.lock();
        // Known entries written under a *different* version are stale
        // by bookkeeping alone; let the load path classify and evict.
        match self.load(&mut st, key) {
            (Loaded::Hit(body), io_error) => {
                st.counters.hits += 1;
                (Some(Arc::new(body)), io_error)
            }
            (Loaded::Miss, io_error) => (None, io_error),
        }
    }

    /// Stores `body` under `key`, evicting LRU entries to stay inside
    /// the byte budget. Identical bytes already on disk are only
    /// touched (content dedup). Failures are counted, never raised.
    pub fn put(&self, key: &CacheKey, body: &CachedBody) {
        let _ = self.put_checked(key, body);
    }

    /// [`put`](DiskTier::put), also reporting whether an I/O error
    /// occurred — the circuit breaker's failure signal.
    pub fn put_checked(&self, key: &CacheKey, body: &CachedBody) -> bool {
        let hash = body.integrity_hash();
        let mut st = self.lock();
        let dedup = st.entries.get(&key.identity).is_some_and(|meta| {
            meta.payload_hash == hash && meta.version == key.version && meta.payload_hash != 0
        });
        if dedup {
            st.clock += 1;
            let tick = st.clock;
            st.entries
                .get_mut(&key.identity)
                .expect("present")
                .last_used = tick;
            st.counters.dedup_puts += 1;
            drop(st);
            return self.persist_index();
        }
        let raw = body.encode(key);
        let size = raw.len() as u64;
        if size > self.budget {
            st.counters.oversize_puts += 1;
            return false;
        }
        // Make room: evict coldest entries (never the one being
        // replaced — its bytes are about to be overwritten in place).
        let replacing = st.entries.get(&key.identity).map_or(0, |m| m.size);
        while st.total_bytes - replacing + size > self.budget {
            let Some((&victim, _)) = st
                .entries
                .iter()
                .filter(|(&id, _)| id != key.identity)
                .min_by_key(|(_, m)| m.last_used)
            else {
                break;
            };
            Self::remove_entry(&mut st, victim);
            let _ = std::fs::remove_file(self.object_path(victim));
            st.counters.evicted_size += 1;
        }
        let mut io_error = false;
        if self.fault("pcache/write").is_some() || self.fault("pcache/rename").is_some() {
            st.counters.io_errors += 1;
            io_error = true;
        } else {
            // A torn write succeeds from the writer's point of view
            // but lands only a prefix of the bytes on disk; the next
            // read finds a Truncated entry and evicts it.
            let written: &[u8] = match self.fault("pcache/torn_write") {
                Some(offset) => &raw[..(offset as usize).min(raw.len().saturating_sub(1))],
                None => &raw,
            };
            match write_atomic_unique(&self.object_path(key.identity), written) {
                Ok(()) => {
                    st.clock += 1;
                    let tick = st.clock;
                    let prev = st.entries.insert(
                        key.identity,
                        EntryMeta {
                            size,
                            last_used: tick,
                            payload_hash: hash,
                            version: key.version,
                        },
                    );
                    st.total_bytes = st.total_bytes - prev.map_or(0, |m| m.size) + size;
                    st.counters.puts += 1;
                }
                Err(_) => {
                    st.counters.io_errors += 1;
                    io_error = true;
                }
            }
        }
        drop(st);
        self.persist_index() || io_error
    }

    /// Validates every tracked entry against `version` without
    /// counting hits: the daemon's warm-start pass. Invalid entries
    /// are evicted (and counted); valid ones get their hashes adopted
    /// into the index and their bytes pulled through the page cache,
    /// so the first request after a restart runs at warm-disk latency.
    /// Returns `(valid, evicted)`.
    pub fn warm_validate(&self, version: u64) -> (usize, usize) {
        let identities: Vec<u64> = {
            let st = self.lock();
            st.entries.keys().copied().collect()
        };
        let (mut valid, mut evicted) = (0, 0);
        for identity in identities {
            let key = CacheKey::new(identity, version);
            let mut st = self.lock();
            match self.load(&mut st, &key) {
                (Loaded::Hit(_), _) => valid += 1,
                (Loaded::Miss, _) => evicted += 1,
            }
        }
        self.persist_index();
        (valid, evicted)
    }

    /// Writes the index (atomically); called after every put and on
    /// drop so recency survives restarts. Failures are counted — the
    /// objects remain the truth and the next open re-scans. Returns
    /// `true` when the write failed (an I/O error for the breaker).
    fn persist_index(&self) -> bool {
        let mut st = self.lock();
        let mut lines: Vec<(u64, EntryMeta)> = st.entries.iter().map(|(&id, &m)| (id, m)).collect();
        lines.sort_by_key(|&(id, _)| id);
        let mut text = String::from(INDEX_HEADER);
        text.push('\n');
        for (id, m) in lines {
            text.push_str(&format!(
                "{id:016x}\t{}\t{}\t{:016x}\t{:016x}\n",
                m.size, m.last_used, m.payload_hash, m.version
            ));
        }
        if write_atomic_unique(&self.dir.join(INDEX_FILE), text.as_bytes()).is_err() {
            st.counters.io_errors += 1;
            return true;
        }
        false
    }

    /// Counter and gauge snapshot, merged into [`crate::CacheStats`]
    /// by the tiered composition.
    pub fn snapshot(&self) -> DiskSnapshot {
        let st = self.lock();
        DiskSnapshot {
            hits: st.counters.hits,
            puts: st.counters.puts,
            dedup_puts: st.counters.dedup_puts,
            evicted_size: st.counters.evicted_size + st.counters.oversize_puts,
            evicted_corrupt: st.counters.evicted_corrupt,
            evicted_version: st.counters.evicted_version,
            io_errors: st.counters.io_errors,
            entries: st.entries.len() as u64,
            bytes: st.total_bytes,
        }
    }
}

impl Drop for DiskTier {
    fn drop(&mut self) {
        self.persist_index();
    }
}

/// Public counter snapshot of one disk tier.
#[derive(Clone, Copy, Debug, Default)]
pub struct DiskSnapshot {
    /// Gets served from disk.
    pub hits: u64,
    /// Object files written.
    pub puts: u64,
    /// Puts skipped because identical bytes were already stored.
    pub dedup_puts: u64,
    /// Entries evicted for the byte budget (including oversize puts
    /// that were refused outright).
    pub evicted_size: u64,
    /// Entries evicted as corrupt/truncated/misfiled.
    pub evicted_corrupt: u64,
    /// Entries evicted as stale-version.
    pub evicted_version: u64,
    /// I/O failures absorbed as misses.
    pub io_errors: u64,
    /// Entries currently tracked.
    pub entries: u64,
    /// Object bytes currently tracked.
    pub bytes: u64,
}

/// Parses the index leniently: a missing, foreign or torn file yields
/// whatever prefix parses; the reconcile pass fixes the rest.
fn load_index(path: &Path) -> HashMap<u64, EntryMeta> {
    let mut entries = HashMap::new();
    let Ok(text) = std::fs::read_to_string(path) else {
        return entries;
    };
    let mut lines = text.lines();
    if lines.next() != Some(INDEX_HEADER) {
        return entries;
    }
    for line in lines {
        let mut f = line.split('\t');
        let parsed = (|| {
            let id = u64::from_str_radix(f.next()?, 16).ok()?;
            let size = f.next()?.parse().ok()?;
            let last_used = f.next()?.parse().ok()?;
            let payload_hash = u64::from_str_radix(f.next()?, 16).ok()?;
            let version = u64::from_str_radix(f.next()?, 16).ok()?;
            Some((
                id,
                EntryMeta {
                    size,
                    last_used,
                    payload_hash,
                    version,
                },
            ))
        })();
        // A malformed line is a truncation tail or foreign edit: skip
        // it — the object files carry their own truth.
        if let Some((id, meta)) = parsed {
            entries.insert(id, meta);
        }
    }
    entries
}

/// Reconciles the parsed index against the directory: adopts scanned
/// objects the index missed (validated lazily on first get) and drops
/// index entries whose file is gone. Sizes are refreshed from the
/// filesystem so a sibling's rewrites are charged correctly.
fn reconcile(dir: &Path, entries: &mut HashMap<u64, EntryMeta>) -> TcorResult<()> {
    let mut on_disk: HashMap<u64, u64> = HashMap::new();
    let listing = std::fs::read_dir(dir)
        .map_err(|e| TcorError::io(format!("scanning cache dir {}", dir.display()), e))?;
    for item in listing {
        let Ok(item) = item else { continue };
        let path = item.path();
        if path.extension().and_then(|e| e.to_str()) != Some(OBJ_EXT) {
            continue;
        }
        let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
            continue;
        };
        let Ok(identity) = u64::from_str_radix(stem, 16) else {
            continue;
        };
        let Ok(meta) = item.metadata() else { continue };
        on_disk.insert(identity, meta.len());
    }
    entries.retain(|id, _| on_disk.contains_key(id));
    for (identity, size) in on_disk {
        let entry = entries.entry(identity).or_insert(EntryMeta {
            size,
            last_used: 0,
            payload_hash: 0,
            version: 0,
        });
        if entry.size != size {
            // The file changed under us: distrust the cached hashes.
            entry.size = size;
            entry.payload_hash = 0;
            entry.version = 0;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tcor-pcache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn body(text: &str) -> CachedBody {
        CachedBody::text("application/json", text)
    }

    #[test]
    fn put_get_survives_reopen() {
        let dir = tmp("reopen");
        let key = CacheKey::new(0x1, 0xA);
        {
            let tier = DiskTier::open(&dir, 1 << 20).unwrap();
            tier.put(&key, &body("{\"v\":1}\n"));
            assert_eq!(tier.get(&key).expect("hit").bytes, b"{\"v\":1}\n");
        }
        let tier = DiskTier::open(&dir, 1 << 20).unwrap();
        let hit = tier.get(&key).expect("hit after restart");
        assert_eq!(hit.bytes, b"{\"v\":1}\n");
        assert_eq!(hit.content_type, "application/json");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_index_is_rebuilt_from_the_scan() {
        let dir = tmp("noindex");
        let key = CacheKey::new(0x2, 0xA);
        DiskTier::open(&dir, 1 << 20)
            .unwrap()
            .put(&key, &body("scan me"));
        std::fs::remove_file(dir.join(INDEX_FILE)).unwrap();
        let tier = DiskTier::open(&dir, 1 << 20).unwrap();
        assert_eq!(tier.get(&key).expect("adopted from scan").bytes, b"scan me");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_index_degrades_to_the_scan() {
        let dir = tmp("tornindex");
        let key = CacheKey::new(0x3, 0xA);
        DiskTier::open(&dir, 1 << 20)
            .unwrap()
            .put(&key, &body("torn"));
        // Tear the index mid-line, as a crash mid-copy would.
        let index = dir.join(INDEX_FILE);
        let text = std::fs::read_to_string(&index).unwrap();
        std::fs::write(&index, &text.as_bytes()[..text.len() - 7]).unwrap();
        let tier = DiskTier::open(&dir, 1 << 20).unwrap();
        assert_eq!(tier.get(&key).expect("scan wins").bytes, b"torn");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn byte_budget_evicts_lru_first() {
        let dir = tmp("budget");
        // Each entry is 44 header + 16 ct + 8 payload = 68 bytes; a
        // 210-byte budget holds three.
        let tier = DiskTier::open(&dir, 210).unwrap();
        let payload = "12345678";
        for id in 1..=3u64 {
            tier.put(&CacheKey::new(id, 1), &body(payload));
        }
        assert_eq!(tier.snapshot().entries, 3);
        // Touch 1 so 2 is the LRU victim.
        assert!(tier.get(&CacheKey::new(1, 1)).is_some());
        tier.put(&CacheKey::new(4, 1), &body(payload));
        let snap = tier.snapshot();
        assert_eq!(snap.entries, 3);
        assert_eq!(snap.evicted_size, 1);
        assert!(snap.bytes <= 210);
        assert!(tier.get(&CacheKey::new(2, 1)).is_none(), "2 was evicted");
        assert!(tier.get(&CacheKey::new(1, 1)).is_some());
        assert!(tier.get(&CacheKey::new(4, 1)).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn oversize_put_is_refused_and_counted() {
        let dir = tmp("oversize");
        let tier = DiskTier::open(&dir, 64).unwrap();
        tier.put(&CacheKey::new(9, 1), &body("this payload cannot fit"));
        let snap = tier.snapshot();
        assert_eq!(snap.entries, 0);
        assert_eq!(snap.evicted_size, 1, "refusal is visible, not silent");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_read_faults_degrade_to_counted_misses() {
        let dir = tmp("faultread");
        let key = CacheKey::new(0x11, 1);
        let tier = DiskTier::open(&dir, 1 << 20)
            .unwrap()
            .with_fault_injector(Arc::new(
                FaultInjector::parse(3, "pcache/read=100#2").unwrap(),
            ));
        tier.put(&key, &body("still here"));
        let (got, io) = tier.get_checked(&key);
        assert!(got.is_none() && io, "injected read fault is an I/O miss");
        let (got, io) = tier.get_checked(&key);
        assert!(got.is_none() && io);
        assert_eq!(tier.snapshot().io_errors, 2);
        // Fault budget exhausted: the entry was never deleted.
        let (got, io) = tier.get_checked(&key);
        assert_eq!(got.expect("served after faults clear").bytes, b"still here");
        assert!(!io);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_write_fault_counts_and_skips_the_object() {
        let dir = tmp("faultwrite");
        let tier = DiskTier::open(&dir, 1 << 20)
            .unwrap()
            .with_fault_injector(Arc::new(
                FaultInjector::parse(3, "pcache/write=100#1").unwrap(),
            ));
        let key = CacheKey::new(0x12, 1);
        assert!(tier.put_checked(&key, &body("lost")), "io error reported");
        assert!(tier.get(&key).is_none());
        assert_eq!(tier.snapshot().io_errors, 1);
        assert!(!tier.put_checked(&key, &body("kept")), "budget exhausted");
        assert_eq!(tier.get(&key).unwrap().bytes, b"kept");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn short_reads_evict_as_corrupt() {
        let dir = tmp("faultshort");
        let tier = DiskTier::open(&dir, 1 << 20)
            .unwrap()
            .with_fault_injector(Arc::new(
                FaultInjector::parse(3, "pcache/short_read=100#1").unwrap(),
            ));
        // A whole entry on disk, truncated in flight by the read.
        let key = CacheKey::new(0x14, 1);
        tier.put(&key, &body("short victim"));
        assert!(tier.get(&key).is_none(), "short read evicts on sight");
        assert_eq!(tier.snapshot().evicted_corrupt, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_writes_evict_as_corrupt_on_next_read() {
        let dir = tmp("faulttorn");
        let tier = DiskTier::open(&dir, 1 << 20)
            .unwrap()
            .with_fault_injector(Arc::new(
                FaultInjector::parse(3, "pcache/torn_write=100@50#1").unwrap(),
            ));
        // The put "succeeds" from the writer's view but lands 50 bytes.
        let key = CacheKey::new(0x13, 1);
        assert!(!tier.put_checked(&key, &body("torn victim")), "undetected");
        assert_eq!(tier.snapshot().puts, 1);
        let (got, io) = tier.get_checked(&key);
        assert!(got.is_none() && !io, "truncation is corruption, not I/O");
        assert_eq!(tier.snapshot().evicted_corrupt, 1);
        // The budgeted fault is spent: the recomputed entry round-trips.
        tier.put(&key, &body("torn victim"));
        assert_eq!(tier.get(&key).unwrap().bytes, b"torn victim");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dedup_put_touches_instead_of_rewriting() {
        let dir = tmp("dedup");
        let tier = DiskTier::open(&dir, 1 << 20).unwrap();
        let key = CacheKey::new(0x5, 0xA);
        tier.put(&key, &body("same"));
        tier.put(&key, &body("same"));
        let snap = tier.snapshot();
        assert_eq!((snap.puts, snap.dedup_puts), (1, 1));
        // Changed bytes under the same key do rewrite.
        tier.put(&key, &body("different"));
        assert_eq!(tier.snapshot().puts, 2);
        assert_eq!(tier.get(&key).unwrap().bytes, b"different");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
