//! The in-process session tier: a fixed-capacity LRU.
//!
//! This absorbs the serve plane's former `LruCache` — same recency
//! bookkeeping (a monotonic touch sequence plus an ordered
//! sequence→key map whose first entry is the victim), now keyed by
//! [`CacheKey`] and holding shared [`CachedBody`]s so it composes with
//! the disk tier. Plain LRU is the right policy here: unlike the
//! simulated tile cache there is no future knowledge to exploit on the
//! request stream.

use crate::body::CachedBody;
use crate::key::CacheKey;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// A fixed-capacity LRU map from cache key to shared body.
pub struct MemTier {
    capacity: usize,
    seq: u64,
    /// key → (body, last-touch sequence number).
    map: HashMap<CacheKey, (Arc<CachedBody>, u64)>,
    /// last-touch sequence → key; first entry is the LRU victim.
    order: BTreeMap<u64, CacheKey>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl MemTier {
    /// A tier holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        MemTier {
            capacity: capacity.max(1),
            seq: 0,
            map: HashMap::new(),
            order: BTreeMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    fn touch(&mut self, key: CacheKey, old_seq: u64) -> u64 {
        self.order.remove(&old_seq);
        self.seq += 1;
        self.order.insert(self.seq, key);
        self.seq
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &CacheKey) -> Option<Arc<CachedBody>> {
        let Some(&(_, old_seq)) = self.map.get(key) else {
            self.misses += 1;
            return None;
        };
        let new_seq = self.touch(*key, old_seq);
        let entry = self.map.get_mut(key).expect("present");
        entry.1 = new_seq;
        self.hits += 1;
        Some(Arc::clone(&entry.0))
    }

    /// Inserts (or refreshes) `key`, evicting the least-recently-used
    /// entry if at capacity.
    pub fn put(&mut self, key: &CacheKey, body: Arc<CachedBody>) {
        if let Some(&(_, old_seq)) = self.map.get(key) {
            let new_seq = self.touch(*key, old_seq);
            self.map.insert(*key, (body, new_seq));
            return;
        }
        if self.map.len() >= self.capacity {
            if let Some((&victim_seq, &victim_key)) = self.order.iter().next() {
                self.order.remove(&victim_seq);
                self.map.remove(&victim_key);
                self.evictions += 1;
            }
        }
        self.seq += 1;
        self.order.insert(self.seq, *key);
        self.map.insert(*key, (body, self.seq));
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the tier is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// `(hits, misses, evictions)` since construction.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evictions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(id: u64) -> CacheKey {
        CacheKey::new(id, 1)
    }

    fn b(text: &str) -> Arc<CachedBody> {
        Arc::new(CachedBody::text("text/plain; charset=utf-8", text))
    }

    #[test]
    fn hit_refreshes_recency() {
        let mut c = MemTier::new(2);
        c.put(&k(1), b("a"));
        c.put(&k(2), b("b"));
        assert_eq!(c.get(&k(1)).expect("hit").bytes, b"a"); // 1 is now MRU
        c.put(&k(3), b("c")); // evicts 2, the LRU
        assert!(c.get(&k(2)).is_none());
        assert!(c.get(&k(1)).is_some());
        assert!(c.get(&k(3)).is_some());
        assert_eq!(c.len(), 2);
        assert_eq!(c.counters().2, 1, "one eviction");
    }

    #[test]
    fn reinsert_updates_value_without_eviction() {
        let mut c = MemTier::new(2);
        c.put(&k(1), b("10"));
        c.put(&k(2), b("20"));
        c.put(&k(1), b("11"));
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&k(1)).expect("hit").bytes, b"11");
        assert_eq!(c.get(&k(2)).expect("not evicted").bytes, b"20");
    }

    #[test]
    fn distinct_versions_are_distinct_entries() {
        let mut c = MemTier::new(4);
        c.put(&CacheKey::new(7, 1), b("old"));
        c.put(&CacheKey::new(7, 2), b("new"));
        assert_eq!(c.get(&CacheKey::new(7, 1)).expect("v1").bytes, b"old");
        assert_eq!(c.get(&CacheKey::new(7, 2)).expect("v2").bytes, b"new");
    }

    #[test]
    fn counters_track_hits_and_misses() {
        let mut c = MemTier::new(1);
        assert!(c.get(&k(1)).is_none());
        c.put(&k(1), b("x"));
        assert!(c.get(&k(1)).is_some());
        assert_eq!(c.counters(), (1, 1, 0));
        assert!(!c.is_empty());
    }
}
