//! The two-tier composition both consumers program against.
//!
//! `get` tries the session tier first (a map lookup), then the disk
//! tier; a disk hit is *promoted* into memory so the next request for
//! the same key answers at memory latency. `put` is write-through:
//! the body lands in both tiers, so a result computed once this
//! session is already durable for the next one. A cache opened with no
//! directory is memory-only — the serve plane without `--cache-dir`
//! behaves exactly as before this crate existed.

use crate::breaker::{BreakerConfig, BreakerSnapshot, CircuitBreaker};
use crate::disk::DiskTier;
use crate::key::CacheKey;
use crate::mem::MemTier;
use crate::{CacheStats, CachedBody, ResultCache, Tier};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use tcor_common::{FaultInjector, TcorResult};

/// A session [`MemTier`] over an optional persistent [`DiskTier`],
/// guarded by a [`CircuitBreaker`]: N consecutive disk I/O errors
/// stop the cache from taxing every request with doomed syscalls
/// until a cooldown-gated probe proves the disk healthy again.
pub struct TieredCache {
    mem: Mutex<MemTier>,
    disk: Option<DiskTier>,
    breaker: Option<CircuitBreaker>,
    misses: Mutex<u64>,
}

impl TieredCache {
    /// A memory-only cache of `mem_entries` slots.
    pub fn memory_only(mem_entries: usize) -> Self {
        TieredCache {
            mem: Mutex::new(MemTier::new(mem_entries)),
            disk: None,
            breaker: None,
            misses: Mutex::new(0),
        }
    }

    /// A cache of `mem_entries` memory slots over `disk` — pass
    /// `Some((dir, byte_budget))` to persist, `None` for memory-only.
    /// A disk tier gets a default-tuned breaker; see
    /// [`with_breaker_config`](TieredCache::with_breaker_config).
    ///
    /// # Errors
    ///
    /// An I/O error if the disk tier's directory cannot be opened.
    pub fn open(mem_entries: usize, disk: Option<(PathBuf, u64)>) -> TcorResult<Self> {
        let disk = match disk {
            Some((dir, budget)) => Some(DiskTier::open(dir, budget)?),
            None => None,
        };
        let breaker = disk
            .is_some()
            .then(|| CircuitBreaker::new(BreakerConfig::default()));
        Ok(TieredCache {
            mem: Mutex::new(MemTier::new(mem_entries)),
            disk,
            breaker,
            misses: Mutex::new(0),
        })
    }

    /// Retunes the disk-tier breaker; a no-op without a disk tier.
    pub fn with_breaker_config(mut self, cfg: BreakerConfig) -> Self {
        if self.disk.is_some() {
            self.breaker = Some(CircuitBreaker::new(cfg));
        }
        self
    }

    /// Attaches a hermetic fault injector to the disk tier (tests).
    pub fn with_fault_injector(mut self, injector: Arc<FaultInjector>) -> Self {
        self.disk = self.disk.map(|d| d.with_fault_injector(injector));
        self
    }

    /// Whether a persistent tier is attached.
    pub fn has_disk(&self) -> bool {
        self.disk.is_some()
    }

    /// The breaker's counter snapshot (zeros without a disk tier).
    pub fn breaker_snapshot(&self) -> BreakerSnapshot {
        self.breaker
            .as_ref()
            .map(|b| b.snapshot())
            .unwrap_or_default()
    }

    fn mem(&self) -> MutexGuard<'_, MemTier> {
        self.mem.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl ResultCache for TieredCache {
    fn get(&self, key: &CacheKey) -> Option<(Arc<CachedBody>, Tier)> {
        if let Some(body) = self.mem().get(key) {
            return Some((body, Tier::Mem));
        }
        if let Some(disk) = &self.disk {
            let breaker = self.breaker.as_ref().expect("disk tier has a breaker");
            if breaker.allow() {
                let (body, io_error) = disk.get_checked(key);
                breaker.record(io_error);
                if let Some(body) = body {
                    // Promote: the *next* get for this key is a mem hit.
                    self.mem().put(key, Arc::clone(&body));
                    return Some((body, Tier::Disk));
                }
            }
        }
        *self.misses.lock().unwrap_or_else(PoisonError::into_inner) += 1;
        None
    }

    fn put(&self, key: &CacheKey, body: &Arc<CachedBody>) {
        self.mem().put(key, Arc::clone(body));
        if let Some(disk) = &self.disk {
            let breaker = self.breaker.as_ref().expect("disk tier has a breaker");
            if breaker.allow() {
                breaker.record(disk.put_checked(key, body));
            }
        }
    }

    /// The daemon's warm-start pass: every persisted entry is read and
    /// re-validated (evicting stale or corrupt ones) *without*
    /// promotion into memory. Promotion is deliberately left to the
    /// first real request so the restart path is observable — it
    /// answers `disk`, then `mem`.
    fn warm_start(&self, version: u64) -> (usize, usize) {
        match &self.disk {
            Some(disk) => disk.warm_validate(version),
            None => (0, 0),
        }
    }

    fn degraded(&self) -> bool {
        self.breaker.as_ref().is_some_and(|b| b.degraded())
    }

    fn stats(&self) -> CacheStats {
        let (mem_hits, _, mem_evictions) = self.mem().counters();
        let mem_entries = self.mem().len() as u64;
        let misses = *self.misses.lock().unwrap_or_else(PoisonError::into_inner);
        let disk = self.disk.as_ref().map(|d| d.snapshot()).unwrap_or_default();
        let breaker = self.breaker_snapshot();
        CacheStats {
            mem_hits,
            disk_hits: disk.hits,
            misses,
            // Memory-only puts still count: fall back to the mem tier's
            // insert count when no disk tier exists.
            puts: if self.disk.is_some() {
                disk.puts
            } else {
                self.puts_mem_only()
            },
            dedup_puts: disk.dedup_puts,
            mem_evictions,
            evicted_size: disk.evicted_size,
            evicted_corrupt: disk.evicted_corrupt,
            evicted_version: disk.evicted_version,
            io_errors: disk.io_errors,
            mem_entries,
            disk_entries: disk.entries,
            disk_bytes: disk.bytes,
            breaker_state: breaker.state,
            breaker_opens: breaker.opens,
            breaker_closes: breaker.closes,
            breaker_probes: breaker.probes,
            breaker_skipped: breaker.skipped,
        }
    }
}

impl TieredCache {
    fn puts_mem_only(&self) -> u64 {
        // Without a disk tier the only put record is the mem tier's
        // population plus what it has evicted since.
        let mem = self.mem();
        mem.len() as u64 + mem.counters().2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tcor-tiered-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn body(text: &str) -> Arc<CachedBody> {
        Arc::new(CachedBody::text("application/json", text))
    }

    #[test]
    fn memory_only_hits_and_misses() {
        let cache = TieredCache::memory_only(4);
        let key = CacheKey::new(1, 1);
        assert!(cache.get(&key).is_none());
        cache.put(&key, &body("x"));
        let (got, tier) = cache.get(&key).expect("hit");
        assert_eq!((got.bytes.as_slice(), tier), (b"x".as_slice(), Tier::Mem));
        let stats = cache.stats();
        assert_eq!(
            (stats.mem_hits, stats.misses, stats.puts, stats.disk_entries),
            (1, 1, 1, 0)
        );
        assert!(!cache.has_disk());
    }

    #[test]
    fn disk_hit_promotes_to_mem() {
        let dir = tmp("promote");
        let key = CacheKey::new(2, 1);
        {
            let cache = TieredCache::open(4, Some((dir.clone(), 1 << 20))).unwrap();
            cache.put(&key, &body("persisted"));
        }
        let cache = TieredCache::open(4, Some((dir.clone(), 1 << 20))).unwrap();
        assert!(cache.has_disk());
        let (_, first) = cache.get(&key).expect("disk hit");
        assert_eq!(first, Tier::Disk);
        let (got, second) = cache.get(&key).expect("mem hit");
        assert_eq!(second, Tier::Mem);
        assert_eq!(got.bytes, b"persisted");
        let stats = cache.stats();
        assert_eq!((stats.disk_hits, stats.mem_hits), (1, 1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn warm_start_validates_without_promoting() {
        let dir = tmp("warm");
        let key = CacheKey::new(3, 7);
        TieredCache::open(4, Some((dir.clone(), 1 << 20)))
            .unwrap()
            .put(&key, &body("warm"));
        let cache = TieredCache::open(4, Some((dir.clone(), 1 << 20))).unwrap();
        assert_eq!(cache.warm_start(7), (1, 0));
        // Warm start must NOT have promoted: first request is disk.
        let (_, tier) = cache.get(&key).expect("hit");
        assert_eq!(tier, Tier::Disk);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn warm_start_evicts_stale_versions() {
        let dir = tmp("warmstale");
        TieredCache::open(4, Some((dir.clone(), 1 << 20)))
            .unwrap()
            .put(&CacheKey::new(4, 1), &body("old build"));
        let cache = TieredCache::open(4, Some((dir.clone(), 1 << 20))).unwrap();
        assert_eq!(cache.warm_start(2), (0, 1), "stale entry evicted");
        assert!(cache.get(&CacheKey::new(4, 2)).is_none());
        assert_eq!(cache.stats().evicted_version, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn breaker_opens_after_consecutive_io_errors_and_stops_taxing_disk() {
        let dir = tmp("breaker-open");
        let cache = TieredCache::open(0, Some((dir.clone(), 1 << 20)))
            .unwrap()
            .with_breaker_config(crate::BreakerConfig {
                threshold: 3,
                cooldown: std::time::Duration::from_secs(60),
            })
            .with_fault_injector(Arc::new(
                tcor_common::FaultInjector::parse(9, "pcache/read=100").unwrap(),
            ));
        // mem capacity 0: every get reaches the disk tier.
        for i in 0..10u64 {
            assert!(cache.get(&CacheKey::new(i, 1)).is_none());
        }
        let stats = cache.stats();
        assert_eq!(stats.io_errors, 3, "breaker capped the damage at N");
        assert_eq!(stats.breaker_state, 2);
        assert_eq!(stats.breaker_opens, 1);
        assert_eq!(stats.breaker_skipped, 7, "remaining gets skipped disk");
        assert!(cache.degraded());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn breaker_recovers_through_a_half_open_probe() {
        let dir = tmp("breaker-recover");
        let cache = TieredCache::open(0, Some((dir.clone(), 1 << 20)))
            .unwrap()
            .with_breaker_config(crate::BreakerConfig {
                threshold: 2,
                cooldown: std::time::Duration::from_millis(10),
            })
            .with_fault_injector(Arc::new(
                tcor_common::FaultInjector::parse(9, "pcache/read=100#2").unwrap(),
            ));
        let key = CacheKey::new(6, 1);
        assert!(cache.get(&key).is_none());
        assert!(cache.get(&key).is_none());
        assert!(cache.degraded(), "two errors tripped the breaker");
        std::thread::sleep(std::time::Duration::from_millis(20));
        // Fault budget is spent: the probe succeeds and closes.
        assert!(cache.get(&key).is_none(), "clean miss, healthy disk");
        let stats = cache.stats();
        assert_eq!((stats.breaker_state, stats.breaker_closes), (0, 1));
        assert!(stats.breaker_probes >= 1);
        assert!(!cache.degraded());
        // Disk service is restored end to end.
        cache.put(&key, &body("healed"));
        let cache2 = TieredCache::open(4, Some((dir.clone(), 1 << 20))).unwrap();
        assert_eq!(cache2.get(&key).unwrap().0.bytes, b"healed");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_through_lands_in_both_tiers() {
        let dir = tmp("wt");
        let key = CacheKey::new(5, 1);
        let cache = TieredCache::open(4, Some((dir.clone(), 1 << 20))).unwrap();
        cache.put(&key, &body("both"));
        let stats = cache.stats();
        assert_eq!((stats.mem_entries, stats.disk_entries), (1, 1));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
