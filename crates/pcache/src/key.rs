//! Content-addressed cache keys: computation identity + code version.

use tcor_common::fxhash64;

/// The key a result is filed under.
///
/// `identity` is the stable hash of the *canonical computation* — the
/// serve plane uses `ApiCall::cache_key()`, the runner its job key.
/// `version` is a hash of the producing code (crate version plus a
/// bumpable schema tag), so entries written by one build are never
/// served by a build whose results could differ: the on-disk entry
/// records both, and a version mismatch on load evicts the entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Hash of the canonical computation.
    pub identity: u64,
    /// Hash of the producing code/schema version.
    pub version: u64,
}

impl CacheKey {
    /// A key for `identity` produced by code version `version`.
    pub fn new(identity: u64, version: u64) -> Self {
        CacheKey { identity, version }
    }

    /// A key hashing `canonical` (the serve plane's canonical request
    /// string) under `version`.
    pub fn of(canonical: &[u8], version: u64) -> Self {
        CacheKey {
            identity: fxhash64(canonical),
            version,
        }
    }

    /// The object file stem: the identity in manifest hex. The version
    /// lives *inside* the entry, not in the name, so a rebuilt
    /// simulator finds (and reclaims) its predecessor's entry for the
    /// same computation instead of leaking it forever.
    pub fn file_stem(&self) -> String {
        format!("{:016x}", self.identity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_stem_is_identity_hex() {
        let k = CacheKey::new(0xABC, 7);
        assert_eq!(k.file_stem(), "0000000000000abc");
        // Version does not change the file location...
        assert_eq!(CacheKey::new(0xABC, 8).file_stem(), k.file_stem());
        // ...but does change key equality.
        assert_ne!(CacheKey::new(0xABC, 8), k);
    }

    #[test]
    fn of_hashes_the_canonical_string() {
        let a = CacheKey::of(b"cell/GTr/base64", 1);
        let b = CacheKey::of(b"cell/GTr/base64", 1);
        let c = CacheKey::of(b"cell/GTr/tcor64", 1);
        assert_eq!(a, b);
        assert_ne!(a.identity, c.identity);
    }
}
