//! `tcor-pcache`: a persistent, content-addressed result cache.
//!
//! The serve plane's LRU response cache and the runner's
//! `ArtifactStore` are the same memoization idea — key a computed
//! result by the stable hash of what produced it, reuse it on repeat —
//! implemented twice, and both die with the process. This crate is the
//! one implementation behind both, split into the session-vs-
//! cross-session tiers of the tigervnc ContentCache/PersistentCache
//! design:
//!
//! * [`MemTier`] — the in-process session tier: a fixed-capacity LRU
//!   over shared [`CachedBody`]s. Hits cost a map lookup.
//! * [`DiskTier`] — the cross-session tier: one self-validating object
//!   file per entry (magic, identity, version, integrity hash —
//!   [`body`]), written atomically via `tcor_common::write_atomic`,
//!   tracked by an index that tolerates crash-truncation (it is
//!   reconciled against a directory scan on open), and bounded by a
//!   byte budget with LRU-by-last-use eviction. Corrupt, truncated or
//!   version-mismatched entries are *evicted on load, never served*.
//! * [`TieredCache`] — the composition both consumers use:
//!   write-through on put, promote-on-hit from disk to memory, with
//!   per-tier counters.
//!
//! Everything is keyed by a [`CacheKey`]: the `fxhash64` identity of
//! the canonical computation (an `ApiCall` canonical string, a job
//! key) plus a *version* hash of the producing code, so a rebuilt
//! simulator never serves a previous build's bytes.
//!
//! Failure model: the cache is an accelerator, never an authority. A
//! disk failure on `get` or `put` is counted ([`CacheStats::io_errors`])
//! and reported as a miss — the caller recomputes cold. A validation
//! failure additionally deletes the offending file
//! ([`CacheStats::evicted_corrupt`] / [`CacheStats::evicted_version`]).
//! A *dying* disk — consecutive I/O errors — trips the tiered cache's
//! [`CircuitBreaker`], which skips disk operations outright until a
//! cooldown-gated probe succeeds; while it is open the cache reports
//! itself [`degraded`](ResultCache::degraded) and serves memory +
//! recompute only. All of this is exercised deterministically by
//! `tcor_common::fault` injection (see `DiskTier::with_fault_injector`
//! and the `tcor-sim chaos` harness).
//! Two processes may share one cache directory: object files are
//! atomic and self-validating, the index is rewritten atomically
//! (last-writer-wins) and re-validated on every load, and a reader
//! that misses in its own index probes the object path directly, so a
//! sibling's writes are visible without coordination.

pub mod body;
pub mod breaker;
pub mod disk;
pub mod key;
pub mod mem;
pub mod tier;

pub use body::CachedBody;
pub use breaker::{BreakerConfig, BreakerSnapshot, CircuitBreaker};
pub use disk::DiskTier;
pub use key::CacheKey;
pub use mem::MemTier;
pub use tier::TieredCache;

use std::sync::Arc;
use tcor_common::MetricRegistry;

/// Which tier satisfied a [`ResultCache::get`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tier {
    /// The in-process session tier.
    Mem,
    /// The cross-session disk tier.
    Disk,
}

impl Tier {
    /// Stable lowercase label ("mem" / "disk") — the `X-Tcor-Cache`
    /// header value.
    pub fn label(self) -> &'static str {
        match self {
            Tier::Mem => "mem",
            Tier::Disk => "disk",
        }
    }
}

/// Counter snapshot across both tiers. All monotonic except the
/// `*_entries` / `disk_bytes` gauges.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Gets answered by the memory tier.
    pub mem_hits: u64,
    /// Gets answered by the disk tier.
    pub disk_hits: u64,
    /// Gets answered by neither tier.
    pub misses: u64,
    /// Entries written (both tiers count once through a tiered put).
    pub puts: u64,
    /// Puts whose bytes were already on disk (content dedup, no write).
    pub dedup_puts: u64,
    /// Memory-tier entries evicted by capacity.
    pub mem_evictions: u64,
    /// Disk entries evicted to stay inside the byte budget.
    pub evicted_size: u64,
    /// Disk entries evicted because validation failed (bad magic,
    /// truncation, identity or integrity-hash mismatch).
    pub evicted_corrupt: u64,
    /// Disk entries evicted because their version hash is stale.
    pub evicted_version: u64,
    /// Disk I/O failures absorbed (the get/put degraded to a miss).
    pub io_errors: u64,
    /// Entries currently in the memory tier.
    pub mem_entries: u64,
    /// Entries currently tracked on disk.
    pub disk_entries: u64,
    /// Payload bytes currently tracked on disk.
    pub disk_bytes: u64,
    /// Disk breaker state: 0 closed, 1 half-open, 2 open.
    pub breaker_state: u64,
    /// Times the disk breaker tripped open.
    pub breaker_opens: u64,
    /// Times a successful probe closed the breaker.
    pub breaker_closes: u64,
    /// Half-open probe operations attempted.
    pub breaker_probes: u64,
    /// Disk operations skipped while the breaker was open.
    pub breaker_skipped: u64,
}

impl CacheStats {
    /// Renders the snapshot under `prefix` ("pcache") in the same
    /// `path = value` registry format as every other counter surface.
    pub fn registry(&self, prefix: &str) -> MetricRegistry {
        let mut reg = MetricRegistry::new();
        for (name, value) in [
            ("mem_hits", self.mem_hits),
            ("disk_hits", self.disk_hits),
            ("misses", self.misses),
            ("puts", self.puts),
            ("dedup_puts", self.dedup_puts),
            ("mem_evictions", self.mem_evictions),
            ("evicted_size", self.evicted_size),
            ("evicted_corrupt", self.evicted_corrupt),
            ("evicted_version", self.evicted_version),
            ("io_errors", self.io_errors),
            ("mem_entries", self.mem_entries),
            ("disk_entries", self.disk_entries),
            ("disk_bytes", self.disk_bytes),
            ("breaker_state", self.breaker_state),
            ("breaker_opens", self.breaker_opens),
            ("breaker_closes", self.breaker_closes),
            ("breaker_probes", self.breaker_probes),
            ("breaker_skipped", self.breaker_skipped),
        ] {
            reg.add(&format!("{prefix}/{name}"), value);
        }
        reg
    }
}

/// The one memoization interface: get / put / stats. The serve plane's
/// response cache and the runner's artifact persistence both program
/// against this, so "cache a result" means the same thing everywhere.
///
/// Implementations are internally synchronized (`&self` methods,
/// callable from any worker), and infallible at the interface: storage
/// failures degrade to misses and are visible only in [`stats`].
///
/// [`stats`]: ResultCache::stats
pub trait ResultCache: Send + Sync {
    /// Looks up `key`; a hit reports which tier answered.
    fn get(&self, key: &CacheKey) -> Option<(Arc<CachedBody>, Tier)>;

    /// Stores `body` under `key` (write-through where tiered).
    fn put(&self, key: &CacheKey, body: &Arc<CachedBody>);

    /// Counter snapshot.
    fn stats(&self) -> CacheStats;

    /// Whether the cache is operating in a degraded mode (e.g. its
    /// disk-tier breaker is open or probing). Serving continues —
    /// degraded means slower, never wrong.
    fn degraded(&self) -> bool {
        false
    }

    /// Re-validates any persistent entries against `version`, evicting
    /// stale or corrupt ones, without promoting anything into faster
    /// tiers. Returns `(valid, evicted)`; the default (no persistence)
    /// is a no-op.
    fn warm_start(&self, version: u64) -> (usize, usize) {
        let _ = version;
        (0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_labels_are_the_header_values() {
        assert_eq!(Tier::Mem.label(), "mem");
        assert_eq!(Tier::Disk.label(), "disk");
    }

    #[test]
    fn stats_render_as_registry_lines() {
        let stats = CacheStats {
            mem_hits: 3,
            disk_hits: 1,
            ..CacheStats::default()
        };
        let text = stats.registry("pcache").to_string();
        assert!(text.contains("pcache/mem_hits = 3"));
        assert!(text.contains("pcache/disk_hits = 1"));
        assert!(text.contains("pcache/io_errors = 0"));
    }
}
