//! Table II: the evaluated benchmarks and their published statistics.

use tcor_gpu::RasterParams;

/// Published (and text-derived) characteristics of one benchmark.
///
/// `pb_footprint_mib` and `avg_reuse` come straight from Table II.
/// Texture footprints and shader lengths are given in §IV.B's prose for
/// RoK/SWa and CCS/DDS respectively; the remaining values are plausible
/// per-genre interpolations (documented in `DESIGN.md`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BenchmarkProfile {
    /// Full title on the Play Store.
    pub name: &'static str,
    /// The paper's alias (CCS, SoD, …).
    pub alias: &'static str,
    /// Installs in millions (Table II).
    pub installs_millions: u32,
    /// Genre (Table II).
    pub genre: &'static str,
    /// 3D geometry (2D games use sprite quads).
    pub is_3d: bool,
    /// Parameter Buffer footprint target in MiB (Table II).
    pub pb_footprint_mib: f64,
    /// Average tiles overlapped per primitive (Table II "Avg Prim
    /// Re-use").
    pub avg_reuse: f64,
    /// Texture working-set footprint in MiB (§IV.B prose / interpolated).
    pub texture_footprint_mib: f64,
    /// Fragment shader length in instructions (§IV.B prose /
    /// interpolated).
    pub shader_instructions: u32,
    /// Deterministic seed for scene synthesis.
    pub seed: u64,
}

impl BenchmarkProfile {
    /// Raster-traffic parameters for the full-system runs.
    pub fn raster_params(&self) -> RasterParams {
        RasterParams {
            texture_footprint_bytes: (self.texture_footprint_mib * 1024.0 * 1024.0) as u64,
            texel_fetches_per_quad: 1.5,
            shader_instructions: self.shader_instructions,
            shader_footprint_bytes: 64 * self.shader_instructions as u64 * 4,
            bytes_per_pixel: 4,
            z_kill_rate: 0.0,
            seed: self.seed ^ 0x7C0D,
        }
    }

    /// Parameter Buffer footprint target in bytes.
    pub fn pb_footprint_bytes(&self) -> u64 {
        (self.pb_footprint_mib * 1024.0 * 1024.0) as u64
    }
}

/// The ten benchmarks of Table II, in the paper's order.
pub fn suite() -> Vec<BenchmarkProfile> {
    vec![
        BenchmarkProfile {
            name: "Candy Crush Saga",
            alias: "CCS",
            installs_millions: 1000,
            genre: "Puzzle",
            is_3d: false,
            pb_footprint_mib: 0.17,
            avg_reuse: 5.9,
            texture_footprint_mib: 2.0,
            shader_instructions: 4,
            seed: 0xCC5,
        },
        BenchmarkProfile {
            name: "Sonic Dash",
            alias: "SoD",
            installs_millions: 100,
            genre: "Arcade",
            is_3d: true,
            pb_footprint_mib: 0.14,
            avg_reuse: 6.9,
            texture_footprint_mib: 3.0,
            shader_instructions: 8,
            seed: 0x50D,
        },
        BenchmarkProfile {
            name: "Shoot Strike War Fire",
            alias: "SWa",
            installs_millions: 10,
            genre: "Shooter",
            is_3d: true,
            pb_footprint_mib: 0.28,
            avg_reuse: 3.7,
            texture_footprint_mib: 0.4,
            shader_instructions: 10,
            seed: 0x5A1,
        },
        BenchmarkProfile {
            name: "Temple Run",
            alias: "TRu",
            installs_millions: 500,
            genre: "Arcade",
            is_3d: true,
            pb_footprint_mib: 0.55,
            avg_reuse: 2.8,
            texture_footprint_mib: 3.5,
            shader_instructions: 9,
            seed: 0x781,
        },
        BenchmarkProfile {
            name: "City Racing 3D",
            alias: "CRa",
            installs_millions: 50,
            genre: "Racing",
            is_3d: true,
            pb_footprint_mib: 0.86,
            avg_reuse: 2.0,
            texture_footprint_mib: 4.0,
            shader_instructions: 12,
            seed: 0xC4A,
        },
        BenchmarkProfile {
            name: "Rise of Kingdoms: Lost Crusade",
            alias: "RoK",
            installs_millions: 10,
            genre: "Strategy",
            is_3d: false,
            pb_footprint_mib: 0.2,
            avg_reuse: 3.6,
            texture_footprint_mib: 6.8,
            shader_instructions: 6,
            seed: 0x40C,
        },
        BenchmarkProfile {
            name: "Derby Destruction Simulator",
            alias: "DDS",
            installs_millions: 10,
            genre: "Racing",
            is_3d: true,
            pb_footprint_mib: 1.81,
            avg_reuse: 1.4,
            texture_footprint_mib: 5.0,
            shader_instructions: 20,
            seed: 0xDD5,
        },
        BenchmarkProfile {
            name: "Sniper 3D",
            alias: "Snp",
            installs_millions: 500,
            genre: "Shooter",
            is_3d: true,
            pb_footprint_mib: 0.71,
            avg_reuse: 1.47,
            texture_footprint_mib: 4.5,
            shader_instructions: 14,
            seed: 0x5B9,
        },
        BenchmarkProfile {
            name: "3D Maze 2: Diamonds & Ghosts",
            alias: "Mze",
            installs_millions: 10,
            genre: "Arcade",
            is_3d: true,
            pb_footprint_mib: 1.22,
            avg_reuse: 2.4,
            texture_footprint_mib: 2.5,
            shader_instructions: 8,
            seed: 0x3A2,
        },
        BenchmarkProfile {
            name: "Gravitytetris",
            alias: "GTr",
            installs_millions: 5,
            genre: "Puzzle",
            is_3d: true,
            pb_footprint_mib: 0.12,
            avg_reuse: 6.9,
            texture_footprint_mib: 1.0,
            shader_instructions: 5,
            seed: 0x617,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_matches_table_two() {
        let s = suite();
        assert_eq!(s.len(), 10);
        let aliases: Vec<&str> = s.iter().map(|b| b.alias).collect();
        assert_eq!(
            aliases,
            ["CCS", "SoD", "SWa", "TRu", "CRa", "RoK", "DDS", "Snp", "Mze", "GTr"]
        );
        let dds = &s[6];
        assert_eq!(dds.pb_footprint_mib, 1.81);
        assert_eq!(dds.avg_reuse, 1.4);
        assert_eq!(dds.shader_instructions, 20);
        let ccs = &s[0];
        assert_eq!(ccs.shader_instructions, 4);
        assert!(!ccs.is_3d);
        let rok = &s[5];
        assert_eq!(rok.texture_footprint_mib, 6.8);
    }

    #[test]
    fn seeds_are_distinct() {
        let s = suite();
        let mut seeds: Vec<u64> = s.iter().map(|b| b.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 10);
    }

    #[test]
    fn raster_params_derive_from_profile() {
        let rok = suite()[5];
        let rp = rok.raster_params();
        assert_eq!(rp.texture_footprint_bytes, (6.8 * 1048576.0) as u64);
        assert_eq!(rp.shader_instructions, 6);
    }
}
