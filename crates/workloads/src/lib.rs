//! # tcor-workloads
//!
//! The synthetic benchmark suite standing in for the ten Android games of
//! Table II (the documented substitution — see `DESIGN.md`). Each
//! [`BenchmarkProfile`] carries the published sufficient statistics
//! (Parameter Buffer footprint, average primitive re-use, 2D/3D style,
//! texture footprint, shader length) and [`synth::generate_scene`]
//! synthesizes a deterministic frame *calibrated* to hit the footprint and
//! re-use targets — the Table II harness (`tcor-sim table2`) verifies the
//! match.
//!
//! ```
//! use tcor_workloads::{suite, generate_scene};
//! use tcor_common::{TileGrid, Traversal};
//!
//! let grid = TileGrid::new(1960, 768, 32);
//! let ccs = &suite()[0];
//! assert_eq!(ccs.alias, "CCS");
//! let scene = generate_scene(ccs, &grid);
//! assert!(!scene.is_empty());
//! ```

pub mod chunk;
pub mod profile;
pub mod synth;
pub mod trace;

pub use chunk::{decode_chunk, encode_chunk, ChunkDecoder};
pub use profile::{suite, BenchmarkProfile};
pub use synth::{generate_scene, Animation, CalibratedScene};
pub use trace::{primitive_trace, prims_capacity, AVG_ATTR_BYTES};
