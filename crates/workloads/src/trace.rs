//! Parameter Buffer access traces for the replacement studies
//! (Figures 1, 11, 12 and 13).
//!
//! The paper studies the Attribute Cache at *primitive* granularity: each
//! access is one primitive (a write when the Polygon List Builder bins
//! it, a read each time the Tile Fetcher processes a tile it overlaps),
//! and capacity converts as "the Attribute Cache has a capacity for N
//! primitives" (§V.A) at an average of 3 attributes × 64 bytes.

use tcor_cache::{Access, Trace};
use tcor_common::{BlockAddr, TraversalOrder};
use tcor_pbuf::BinnedFrame;

/// Bytes one primitive occupies on average (3 attributes, one 64-byte
/// block each) — the §V.A capacity conversion.
pub const AVG_ATTR_BYTES: u64 = 3 * 64;

/// Converts a cache size in bytes to a capacity in primitives, as the
/// paper's lower-bound analysis does ("the Attribute Cache has a capacity
/// for 128 primitives").
pub fn prims_capacity(bytes: u64) -> usize {
    (bytes / AVG_ATTR_BYTES) as usize
}

/// The primitive-granularity PB-Attributes trace of one frame:
/// compulsory writes in binning order, then reads in tile traversal
/// order. The trace key is the primitive id.
pub fn primitive_trace(frame: &BinnedFrame, order: &TraversalOrder) -> Trace {
    let mut trace = Vec::with_capacity(frame.num_primitives() + frame.total_pmds());
    for p in frame.primitives() {
        trace.push(Access::write(BlockAddr(p.id.0 as u64)));
    }
    for tile in order.iter() {
        for prim in frame.tile_list(tile) {
            trace.push(Access::read(BlockAddr(prim.0 as u64)));
        }
    }
    trace
}

/// The *hardware* OPT priorities for [`primitive_trace`]'s accesses: what
/// TCOR's 12-bit OPT Numbers encode, aligned index-for-index with the
/// trace. A write carries its primitive's first-use rank; a read carries
/// the rank of the next tile using the primitive (`u64::MAX` when none).
///
/// Feeding these to the engine's OPT policy instead of exact next-access
/// positions quantifies the D1 design decision (OPT Numbers approximate
/// Belady's timestamps at tile granularity).
pub fn opt_number_annotations(
    frame: &BinnedFrame,
    order: &tcor_common::TraversalOrder,
) -> Vec<u64> {
    let mut out = Vec::with_capacity(frame.num_primitives() + frame.total_pmds());
    for p in frame.primitives() {
        out.push(p.first_use().value() as u64);
    }
    for tile in order.iter() {
        let rank = order.rank_of(tile);
        for prim in frame.tile_list(tile) {
            let next = frame.primitive(*prim).next_use_after(rank);
            out.push(if next.is_never() {
                u64::MAX
            } else {
                next.value() as u64
            });
        }
    }
    out
}

/// The paper's lower bound on total misses (§V.A): every write is a
/// compulsory miss, and at least `TP - CP` primitives cannot be resident
/// when reading starts.
///
/// ```
/// use tcor_workloads::trace::lower_bound_misses;
/// assert_eq!(lower_bound_misses(1000, 128), 1000 + 872);
/// assert_eq!(lower_bound_misses(100, 128), 100);
/// ```
pub fn lower_bound_misses(total_prims: usize, capacity_prims: usize) -> u64 {
    let tp = total_prims as u64;
    let cp = capacity_prims as u64;
    if cp >= tp {
        tp
    } else {
        tp + (tp - cp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcor_cache::profile::opt_misses;
    use tcor_common::{TileGrid, TileId, Traversal};

    fn frame_and_order() -> (BinnedFrame, TraversalOrder) {
        let grid = TileGrid::new(96, 96, 32); // 3x3
        let order = Traversal::Scanline.order(&grid);
        let t = |i: u32| TileId(i);
        let frame = BinnedFrame::new(
            &[
                (3, vec![t(0), t(3), t(6)]),
                (3, vec![t(1), t(2)]),
                (3, vec![t(4), t(5), t(7), t(8)]),
            ],
            &order,
        );
        (frame, order)
    }

    #[test]
    fn trace_is_writes_then_reads_in_order() {
        let (frame, order) = frame_and_order();
        let t = primitive_trace(&frame, &order);
        assert_eq!(t.len(), 3 + 9);
        assert!(t[..3].iter().all(|a| a.kind.is_write()));
        assert!(t[3..].iter().all(|a| !a.kind.is_write()));
        // Reads follow tile order: tile0->P0, tile1->P1, tile2->P1, ...
        let read_ids: Vec<u64> = t[3..].iter().map(|a| a.addr.0).collect();
        assert_eq!(read_ids, vec![0, 1, 1, 0, 2, 2, 0, 2, 2]);
    }

    #[test]
    fn capacity_conversion() {
        assert_eq!(prims_capacity(48 << 10), 256);
        assert_eq!(prims_capacity(191), 0);
    }

    #[test]
    fn lower_bound_is_below_opt() {
        let (frame, order) = frame_and_order();
        let trace = primitive_trace(&frame, &order);
        for cp in 1..=4usize {
            let lb = lower_bound_misses(frame.num_primitives(), cp);
            let opt = opt_misses(&trace, cp);
            assert!(lb <= opt, "LB {lb} > OPT {opt} at capacity {cp}");
        }
    }

    #[test]
    fn opt_reaches_lower_bound_with_enough_capacity() {
        let (frame, order) = frame_and_order();
        let trace = primitive_trace(&frame, &order);
        // Capacity for all 3 primitives: only compulsory write misses.
        assert_eq!(opt_misses(&trace, 3), 3);
        assert_eq!(lower_bound_misses(3, 3), 3);
    }
}
