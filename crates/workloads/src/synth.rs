//! Calibrated scene synthesis.
//!
//! Given a [`BenchmarkProfile`], produce a deterministic frame whose
//! Parameter Buffer footprint and average primitive re-use match the
//! Table II targets. Synthesis is iterative: generate with a size factor,
//! measure re-use by binning bounding boxes, correct the factor, and
//! finally size the primitive count to the footprint target.
//!
//! Scenes are *spatially coherent*: primitives arrive in mesh/object
//! order (consecutive triangles adjacent on screen), as real game
//! geometry does — this matters for the Primitive List Cache, whose
//! locality comes from consecutive primitives touching the same tiles.

use crate::profile::BenchmarkProfile;
use tcor_common::{SmallRng, TileGrid, Tri2};
use tcor_gpu::{Scene, ScenePrimitive};

/// Attribute-count distribution with mean 3.0 ("an average primitive has
/// around 3 attributes", §III.C.1).
const ATTR_CHOICES: [u8; 9] = [1, 2, 2, 3, 3, 3, 4, 4, 5];

/// Triangles per synthesized object (mesh coherence granularity).
const TRIS_PER_OBJECT: usize = 24;

/// A generated scene with its measured statistics.
#[derive(Clone, Debug)]
pub struct CalibratedScene {
    /// The frame's primitives in program order.
    pub scene: Scene,
    /// Measured average tiles per primitive (compare to Table II).
    pub measured_reuse: f64,
    /// Measured Parameter Buffer footprint in bytes (attributes at one
    /// 64-byte block each + 4-byte PMDs).
    pub measured_footprint_bytes: u64,
    /// Calibrated primitive count (for [`Animation`]).
    pub num_prims: usize,
    /// Calibrated mean primitive side in pixels (for [`Animation`]).
    pub mean_side: f64,
}

/// An animated workload: the calibrated scene with per-object velocities,
/// producing smoothly varying frames (the "animated graphics
/// applications" of the paper's abstract). Geometry statistics stay at
/// the Table II calibration on every frame; only positions move.
#[derive(Clone, Debug)]
pub struct Animation {
    profile: BenchmarkProfile,
    num_prims: usize,
    mean_side: f64,
}

impl Animation {
    /// Calibrates the profile once and fixes the animation parameters.
    pub fn new(profile: &BenchmarkProfile, grid: &TileGrid) -> Self {
        let c = calibrate(profile, grid);
        Animation {
            profile: *profile,
            num_prims: c.num_prims,
            mean_side: c.mean_side,
        }
    }

    /// The scene at time `t` (in frames): object origins translate by
    /// their velocities and wrap at the screen edges. `t = 0.0`
    /// reproduces [`generate_scene`]'s frame exactly.
    pub fn frame(&self, grid: &TileGrid, t: f64) -> Scene {
        build(&self.profile, grid, self.num_prims, self.mean_side, t).scene
    }
}

/// Generates the calibrated frame for `profile` on `grid`.
pub fn generate_scene(profile: &BenchmarkProfile, grid: &TileGrid) -> Scene {
    calibrate(profile, grid).scene
}

/// Generates the frame and reports the measured statistics (the Table II
/// verification harness uses this).
pub fn calibrate(profile: &BenchmarkProfile, grid: &TileGrid) -> CalibratedScene {
    // Initial primitive count from the footprint identity:
    // footprint ≈ TP · (avg_attrs·64 + reuse·4).
    let per_prim = 3.0 * 64.0 + profile.avg_reuse * 4.0;
    let mut num_prims = (profile.pb_footprint_bytes() as f64 / per_prim).round() as usize;
    // Initial size factor from the bbox model: reuse ≈ (s/32 + 1)².
    let mut side = 32.0 * (profile.avg_reuse.sqrt() - 1.0).max(0.05);

    let mut best = build(profile, grid, num_prims, side, 0.0);
    for _ in 0..8 {
        let measured = best.measured_reuse.max(1.0);
        let target = profile.avg_reuse;
        if (measured - target).abs() / target < 0.02 {
            break;
        }
        // Invert the bbox model around the measured point.
        let correction =
            (32.0 * (target.sqrt() - 1.0).max(0.05)) / (32.0 * (measured.sqrt() - 1.0).max(0.05));
        side = (side * correction.clamp(0.25, 4.0)).clamp(1.0, 600.0);
        best = build(profile, grid, num_prims, side, 0.0);
    }
    // Resize primitive count to the footprint target using measured
    // per-primitive cost.
    for _ in 0..3 {
        let per_prim_measured = best.measured_footprint_bytes as f64 / best.scene.len() as f64;
        let wanted = (profile.pb_footprint_bytes() as f64 / per_prim_measured).round() as usize;
        if wanted.abs_diff(best.scene.len()) * 50 < best.scene.len() {
            break;
        }
        num_prims = wanted.max(TRIS_PER_OBJECT);
        best = build(profile, grid, num_prims, side, 0.0);
    }
    best
}

fn build(
    profile: &BenchmarkProfile,
    grid: &TileGrid,
    num_prims: usize,
    mean_side: f64,
    phase: f64,
) -> CalibratedScene {
    let mut rng = SmallRng::seed_from_u64(profile.seed);
    let mut scene = Scene::new();
    let (w, h) = (grid.screen_width() as f32, grid.screen_height() as f32);
    let num_objects = num_prims.div_ceil(TRIS_PER_OBJECT);
    'outer: for _obj in 0..num_objects {
        // Object origin: uniform over the screen with a small margin,
        // translated by the object's velocity at animation time `phase`
        // (a few pixels per frame, wrapping at the screen edges).
        let bx = rng.random_range(0.0..w as f64 * 0.95);
        let by = rng.random_range(0.0..h as f64 * 0.95);
        let (vx, vy) = (
            rng.random_range(-4.0..4.0f64),
            rng.random_range(-2.0..2.0f64),
        );
        let ox = (bx + vx * phase).rem_euclid(w as f64 * 0.95) as f32;
        let oy = (by + vy * phase).rem_euclid(h as f64 * 0.95) as f32;
        // Per-object scale spread: foreground objects are bigger
        // (perspective for 3D, sprite variety for 2D).
        let spread = if profile.is_3d {
            // Log-uniform in [0.4, 2.5] around the mean.
            (0.4f64 * (2.5f64 / 0.4).powf(rng.random_f64())) as f32
        } else {
            rng.random_range(0.7..1.3f64) as f32
        };
        let s = (mean_side as f32 * spread).max(1.0);
        for t in 0..TRIS_PER_OBJECT {
            if scene.len() >= num_prims {
                break 'outer;
            }
            // Strip order: cells of a 6-row grid, two triangles per cell.
            let cell = t / 2;
            let cx = ox + (cell % 6) as f32 * s * 0.5;
            let cy = oy + (cell / 6) as f32 * s * 0.5;
            let jitter = if profile.is_3d {
                rng.random_range(-0.1..0.1f64) as f32 * s
            } else {
                0.0
            };
            let tri = if t % 2 == 0 {
                Tri2::new((cx, cy), (cx + s, cy + jitter), (cx, cy + s))
            } else {
                Tri2::new((cx + s, cy), (cx + s, cy + s), (cx + jitter, cy + s))
            };
            let attr_count = ATTR_CHOICES[rng.random_range(0..ATTR_CHOICES.len())];
            scene.push(ScenePrimitive { tri, attr_count });
        }
    }
    measure(scene, grid, num_prims, mean_side)
}

fn measure(scene: Scene, grid: &TileGrid, num_prims: usize, mean_side: f64) -> CalibratedScene {
    let (w, h) = (grid.screen_width() as f32, grid.screen_height() as f32);
    let mut total_tiles = 0u64;
    let mut visible = 0u64;
    let mut attr_blocks = 0u64;
    for p in scene.primitives() {
        if p.tri.bbox().clamp_to(w, h).is_none() {
            continue;
        }
        visible += 1;
        total_tiles += grid.tiles_overlapping(&p.tri.bbox()).len() as u64;
        attr_blocks += p.attr_count as u64;
    }
    let measured_reuse = if visible == 0 {
        0.0
    } else {
        total_tiles as f64 / visible as f64
    };
    CalibratedScene {
        scene,
        measured_reuse,
        measured_footprint_bytes: attr_blocks * 64 + total_tiles * 4,
        num_prims,
        mean_side,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::suite;

    fn grid() -> TileGrid {
        TileGrid::new(1960, 768, 32)
    }

    #[test]
    fn calibration_hits_reuse_targets() {
        for b in suite() {
            let c = calibrate(&b, &grid());
            let err = (c.measured_reuse - b.avg_reuse).abs() / b.avg_reuse;
            assert!(
                err < 0.10,
                "{}: reuse {:.2} vs target {:.2}",
                b.alias,
                c.measured_reuse,
                b.avg_reuse
            );
        }
    }

    #[test]
    fn calibration_hits_footprint_targets() {
        for b in suite() {
            let c = calibrate(&b, &grid());
            let target = b.pb_footprint_bytes() as f64;
            let err = (c.measured_footprint_bytes as f64 - target).abs() / target;
            assert!(
                err < 0.15,
                "{}: footprint {:.2} MiB vs target {:.2} MiB",
                b.alias,
                c.measured_footprint_bytes as f64 / 1048576.0,
                b.pb_footprint_mib
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let b = suite()[0];
        let a = generate_scene(&b, &grid());
        let c = generate_scene(&b, &grid());
        assert_eq!(a, c);
    }

    #[test]
    fn scenes_are_spatially_coherent() {
        // Consecutive primitives within an object should be close: median
        // distance between consecutive bbox centres well under a tile.
        let b = suite()[3]; // TRu
        let s = generate_scene(&b, &grid());
        let centers: Vec<(f32, f32)> = s
            .primitives()
            .iter()
            .map(|p| {
                let bb = p.tri.bbox();
                ((bb.x0 + bb.x1) / 2.0, (bb.y0 + bb.y1) / 2.0)
            })
            .collect();
        let mut dists: Vec<f32> = centers
            .windows(2)
            .map(|w| ((w[0].0 - w[1].0).powi(2) + (w[0].1 - w[1].1).powi(2)).sqrt())
            .collect();
        dists.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = dists[dists.len() / 2];
        assert!(median < 64.0, "median consecutive distance {median}");
    }

    #[test]
    fn animation_frame_zero_matches_generate_scene() {
        let g = grid();
        let b = suite()[1];
        let anim = Animation::new(&b, &g);
        assert_eq!(anim.frame(&g, 0.0), generate_scene(&b, &g));
    }

    #[test]
    fn animation_moves_smoothly() {
        let g = grid();
        let b = suite()[0];
        let anim = Animation::new(&b, &g);
        let f0 = anim.frame(&g, 0.0);
        let f1 = anim.frame(&g, 1.0);
        let f10 = anim.frame(&g, 10.0);
        assert_eq!(f0.len(), f1.len());
        // Inter-frame displacement of the first vertex: small between
        // consecutive frames (a few px/frame), larger over 10 frames
        // (modulo wrap-around, so compare medians).
        let disp = |a: &tcor_gpu::Scene, b: &tcor_gpu::Scene| -> f32 {
            let mut d: Vec<f32> = a
                .primitives()
                .iter()
                .zip(b.primitives())
                .map(|(p, q)| {
                    let (ax, ay) = p.tri.v[0];
                    let (bx, by) = q.tri.v[0];
                    ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt()
                })
                .collect();
            d.sort_by(|x, y| x.partial_cmp(y).unwrap());
            d[d.len() / 2]
        };
        let step = disp(&f0, &f1);
        assert!(step > 0.0 && step < 8.0, "median per-frame motion {step}");
        assert!(disp(&f0, &f10) > step, "longer time, larger displacement");
    }

    #[test]
    fn animation_preserves_calibration_statistics() {
        let g = grid();
        let b = suite()[3]; // TRu
        let anim = Animation::new(&b, &g);
        for t in [5.0, 20.0] {
            let scene = anim.frame(&g, t);
            let measured = measure(scene, &g, 0, 0.0);
            let err = (measured.measured_reuse - b.avg_reuse).abs() / b.avg_reuse;
            assert!(
                err < 0.15,
                "frame {t}: reuse {:.2} drifted from {:.2}",
                measured.measured_reuse,
                b.avg_reuse
            );
        }
    }

    #[test]
    fn attr_distribution_mean_is_three() {
        let b = suite()[4];
        let s = generate_scene(&b, &grid());
        let mean = s.avg_attrs();
        assert!((2.6..=3.4).contains(&mean), "mean attrs {mean}");
    }
}
