//! Compact access-trace chunk encoding shared by the streaming client
//! and server.
//!
//! One access per line: a kind character (`R` or `W`) followed by the
//! block address in lowercase hex, e.g. `R1f` / `W0`. Lines end with
//! `\n`; blank lines are ignored. The format is a tighter cousin of the
//! `trace.rs` CSV (no header, no comma, hex addresses) — about half the
//! bytes of the CSV for typical traces, and trivially splittable at
//! arbitrary byte boundaries because the decoder carries the partial
//! last line between chunks.
//!
//! [`ChunkDecoder::feed`] is **transactional**: a malformed line rejects
//! the whole chunk with an [`ErrorKind::Serve`](tcor_common::ErrorKind::Serve) typed error and leaves
//! the decoder exactly as it was, so a streaming session survives a bad
//! upload and can retry or continue.

use tcor_cache::{Access, AccessKind, Trace};
use tcor_common::{BlockAddr, TcorError, TcorResult};

/// Longest well-formed line: kind char + 16 hex digits. Anything a
/// decoder carries beyond this (plus slack for a stray `\r`) cannot
/// become valid, so the carry is bounded regardless of input.
const MAX_LINE_BYTES: usize = 32;

/// Encodes accesses in the chunk line format (with a trailing newline
/// unless empty). `decode` of the result round-trips exactly.
pub fn encode_chunk(accesses: &[Access]) -> String {
    let mut out = String::with_capacity(accesses.len() * 8);
    for a in accesses {
        let kind = match a.kind {
            AccessKind::Read => 'R',
            AccessKind::Write => 'W',
        };
        out.push(kind);
        out.push_str(&format!("{:x}\n", a.addr.0));
    }
    out
}

/// Decodes one complete, self-contained chunk (convenience wrapper over
/// a throwaway [`ChunkDecoder`]).
pub fn decode_chunk(chunk: &str) -> TcorResult<Trace> {
    let mut dec = ChunkDecoder::new();
    let mut accesses = dec.feed(chunk)?;
    accesses.extend(dec.finish()?);
    Ok(accesses)
}

/// Incremental decoder for the chunk line format. Chunks may split
/// anywhere — mid-line, mid-address — because the unterminated last
/// line is carried into the next [`feed`](Self::feed).
#[derive(Clone, Debug, Default)]
pub struct ChunkDecoder {
    /// Unterminated partial line from the previous chunk.
    carry: String,
}

impl ChunkDecoder {
    /// A fresh decoder with no carried bytes.
    pub fn new() -> Self {
        Self::default()
    }

    /// Decodes every complete line in `carry + chunk`, retaining the
    /// trailing partial line for the next call.
    ///
    /// All-or-nothing: on any malformed line the chunk is rejected with
    /// an [`ErrorKind::Serve`](tcor_common::ErrorKind::Serve) error and the decoder state (including
    /// the carry) is unchanged — the caller's session is still intact.
    pub fn feed(&mut self, chunk: &str) -> TcorResult<Trace> {
        let (complete, rest) = match chunk.rfind('\n') {
            Some(cut) => (&chunk[..=cut], &chunk[cut + 1..]),
            None => ("", chunk),
        };
        if self.carry.len() + rest.len() > MAX_LINE_BYTES {
            return Err(TcorError::serve(format!(
                "stream chunk: unterminated line exceeds {MAX_LINE_BYTES} bytes"
            )));
        }
        let mut accesses = Trace::new();
        let mut lines = complete.lines();
        // The carry completes with the first line of this chunk (or is
        // itself a complete line when the chunk starts with '\n').
        if !self.carry.is_empty() && !complete.is_empty() {
            let first = lines.next().unwrap_or("");
            let joined = format!("{}{}", self.carry, first);
            if let Some(a) = parse_line(&joined)? {
                accesses.push(a);
            }
        }
        for line in lines {
            if let Some(a) = parse_line(line)? {
                accesses.push(a);
            }
        }
        // Parsed clean: commit the new carry.
        if complete.is_empty() {
            self.carry.push_str(rest);
        } else {
            self.carry.clear();
            self.carry.push_str(rest);
        }
        Ok(accesses)
    }

    /// Flushes the decoder at end of stream, decoding a final
    /// unterminated line if one is carried.
    pub fn finish(&mut self) -> TcorResult<Trace> {
        if self.carry.is_empty() {
            return Ok(Trace::new());
        }
        let line = std::mem::take(&mut self.carry);
        match parse_line(&line) {
            Ok(Some(a)) => Ok(vec![a]),
            Ok(None) => Ok(Trace::new()),
            Err(e) => {
                self.carry = line; // stay transactional even at EOF
                Err(e)
            }
        }
    }

    /// Bytes currently carried (unterminated partial line).
    pub fn carry_len(&self) -> usize {
        self.carry.len()
    }
}

/// Parses one line: `None` for blank, `Some(access)` for `R<hex>` /
/// `W<hex>`, typed [`ErrorKind::Serve`](tcor_common::ErrorKind::Serve) error otherwise.
fn parse_line(line: &str) -> TcorResult<Option<Access>> {
    let line = line.strip_suffix('\r').unwrap_or(line);
    if line.is_empty() {
        return Ok(None);
    }
    let bad = |what: &str| TcorError::serve(format!("stream chunk: {what} in line {line:?}"));
    let mut chars = line.chars();
    let kind = match chars.next() {
        Some('R') => AccessKind::Read,
        Some('W') => AccessKind::Write,
        _ => return Err(bad("unknown access kind")),
    };
    let hex = chars.as_str();
    if hex.is_empty() || hex.len() > 16 {
        return Err(bad("bad address length"));
    }
    let addr = u64::from_str_radix(hex, 16).map_err(|_| bad("bad hex address"))?;
    if hex.chars().any(|c| c.is_ascii_uppercase()) {
        return Err(bad("address must be lowercase hex"));
    }
    Ok(Some(Access {
        addr: BlockAddr(addr),
        kind,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcor_common::ErrorKind;

    fn reads(seq: &[u64]) -> Vec<Access> {
        seq.iter().map(|&b| Access::read(BlockAddr(b))).collect()
    }

    #[test]
    fn roundtrip_with_writes() {
        let mut trace = reads(&[0, 1, 0xdeadbeef, u64::MAX]);
        trace.push(Access::write(BlockAddr(42)));
        let encoded = encode_chunk(&trace);
        assert_eq!(decode_chunk(&encoded).unwrap(), trace);
    }

    #[test]
    fn split_anywhere_reassembles() {
        let trace = reads(&[7, 0x1234, 9, 0xabcdef]);
        let encoded = encode_chunk(&trace);
        for cut in 0..=encoded.len() {
            let mut dec = ChunkDecoder::new();
            let mut got = dec.feed(&encoded[..cut]).unwrap();
            got.extend(dec.feed(&encoded[cut..]).unwrap());
            got.extend(dec.finish().unwrap());
            assert_eq!(got, trace, "cut at {cut}");
        }
    }

    #[test]
    fn blank_lines_and_crlf_tolerated() {
        let got = decode_chunk("R1\n\nW2\r\n\r\nR3").unwrap();
        let want = vec![
            Access::read(BlockAddr(1)),
            Access::write(BlockAddr(2)),
            Access::read(BlockAddr(3)),
        ];
        assert_eq!(got, want);
    }

    #[test]
    fn malformed_chunk_is_rejected_atomically() {
        let mut dec = ChunkDecoder::new();
        dec.feed("R1\nR2").unwrap();
        assert_eq!(dec.carry_len(), 2);
        let err = dec.feed("f\nXbad\n").unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Serve);
        // Carry untouched: the session can continue with a good chunk.
        assert_eq!(dec.carry_len(), 2);
        let mut got = dec.feed("f\nR3\n").unwrap();
        got.extend(dec.finish().unwrap());
        assert_eq!(got, reads(&[0x2f, 3]));
    }

    #[test]
    fn unterminated_line_is_bounded() {
        let mut dec = ChunkDecoder::new();
        let err = dec.feed(&"R".repeat(MAX_LINE_BYTES + 1)).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Serve);
    }

    #[test]
    fn typed_errors_for_bad_lines() {
        for bad in ["Q1\n", "R\n", "Rg1\n", "R1F\n", "R11111111111111111\n"] {
            let err = decode_chunk(bad).unwrap_err();
            assert_eq!(err.kind(), ErrorKind::Serve, "{bad:?}");
        }
    }
}
