//! Decoder-totality fuzzing for the streaming chunk format.
//!
//! [`ChunkDecoder`] sits on the daemon's upload boundary: every byte
//! sequence a client can send must come back as `Ok` or a typed
//! serve-class error — never a panic, never an unbounded carry. The
//! fuzz is seeded (Xoshiro, fixed seed) so a failure reproduces
//! exactly; the corpus is structured mutations of valid chunks (which
//! land near the parser's edge cases) plus fully random buffers, plus
//! a split-anywhere pass proving the incremental path total at every
//! possible chunk boundary.

use tcor_common::{ErrorKind, Xoshiro256pp};
use tcor_workloads::{decode_chunk, ChunkDecoder};

/// Valid chunks covering every shape the decoder accepts: reads,
/// writes, blank lines, CRLF, an unterminated final line.
const VALID: &[&str] = &[
    "R1\nR2\nR3\n",
    "Rdeadbeef\nW0\nRffffffffffffffff\n",
    "R1\r\n\r\nW2\r\n",
    "\n\nR7\n",
    "R1\nW2",
];

/// One seeded mutation pass: 1–4 edits, each a truncation, bit flip,
/// byte insertion, or byte removal at a random offset.
fn mutate(rng: &mut Xoshiro256pp, base: &[u8]) -> Vec<u8> {
    let mut buf = base.to_vec();
    let edits = 1 + rng.random_range(0..4u64) as usize;
    for _ in 0..edits {
        match rng.random_range(0..4u64) {
            0 if !buf.is_empty() => {
                let at = rng.random_range(0..buf.len() as u64) as usize;
                buf.truncate(at);
            }
            1 if !buf.is_empty() => {
                let at = rng.random_range(0..buf.len() as u64) as usize;
                buf[at] ^= 1 << rng.random_range(0..8u64);
            }
            2 => {
                let at = rng.random_range(0..buf.len() as u64 + 1) as usize;
                buf.insert(at, rng.random_range(0..256u64) as u8);
            }
            _ if !buf.is_empty() => {
                let at = rng.random_range(0..buf.len() as u64) as usize;
                buf.remove(at);
            }
            _ => {}
        }
    }
    buf
}

/// Runs one buffer through the full decoder lifecycle (feed + finish)
/// and asserts any failure is serve-class.
fn decode_total(buf: &[u8]) -> bool {
    let Ok(text) = std::str::from_utf8(buf) else {
        // The HTTP layer hands the decoder `&str`; non-UTF-8 never
        // reaches it.
        return false;
    };
    let mut dec = ChunkDecoder::new();
    let fed = match dec.feed(text) {
        Ok(t) => t,
        Err(e) => {
            assert_eq!(
                e.kind(),
                ErrorKind::Serve,
                "decode failures must be serve-class: {e}"
            );
            return false;
        }
    };
    match dec.finish() {
        Ok(tail) => {
            // Cross-check against the one-shot decoder.
            let whole = decode_chunk(text).expect("feed+finish ok but one-shot failed");
            let mut streamed = fed;
            streamed.extend(tail);
            assert_eq!(streamed, whole, "incremental and one-shot decode differ");
            true
        }
        Err(e) => {
            assert_eq!(e.kind(), ErrorKind::Serve);
            false
        }
    }
}

#[test]
fn the_valid_corpus_decodes_clean() {
    for chunk in VALID {
        assert!(
            decode_total(chunk.as_bytes()),
            "valid chunk refused: {chunk:?}"
        );
    }
}

#[test]
fn mutated_chunks_never_panic_and_fail_typed() {
    let mut rng = Xoshiro256pp::seed_from_u64(42);
    let (mut ok, mut err) = (0u64, 0u64);
    for round in 0..2000 {
        let base = VALID[round % VALID.len()].as_bytes();
        let fuzzed = mutate(&mut rng, base);
        if decode_total(&fuzzed) {
            ok += 1;
        } else {
            err += 1;
        }
    }
    // Mutations near valid chunks must actually exercise the error
    // paths — and some flips (hex digit to hex digit) should survive.
    assert!(err > 0, "no mutation reached an error path");
    assert!(ok > 0, "no mutation survived decoding (corpus too fragile)");
}

#[test]
fn random_buffers_never_panic() {
    let mut rng = Xoshiro256pp::seed_from_u64(4242);
    for _ in 0..2000 {
        let len = rng.random_range(0..256u64) as usize;
        let buf: Vec<u8> = (0..len)
            .map(|_| rng.random_range(0..256u64) as u8)
            .collect();
        decode_total(&buf);
    }
}

#[test]
fn split_anywhere_decodes_like_the_whole() {
    // Feeding a valid stream split at EVERY byte boundary must agree
    // with the one-shot decode — the carry is a transport detail.
    let stream = "R1\nRdeadbeef\r\n\nW2\nR3\nWabc\n";
    let whole = decode_chunk(stream).unwrap();
    for cut in 0..=stream.len() {
        if !stream.is_char_boundary(cut) {
            continue;
        }
        let mut dec = ChunkDecoder::new();
        let mut got = dec.feed(&stream[..cut]).unwrap();
        got.extend(dec.feed(&stream[cut..]).unwrap());
        got.extend(dec.finish().unwrap());
        assert_eq!(got, whole, "split at byte {cut} diverged");
    }
}

#[test]
fn adversarial_inputs_hit_the_declared_limits() {
    // A line that never ends must be refused at the carry bound, not
    // buffered forever.
    let endless = "R".repeat(1 << 16);
    let mut dec = ChunkDecoder::new();
    let err = dec.feed(&endless).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::Serve);
    // Fed one byte at a time, the bound still holds (the carry is what
    // grows).
    let mut dec = ChunkDecoder::new();
    let mut refused = false;
    for c in endless.chars().take(256) {
        if dec.feed(&c.to_string()).is_err() {
            refused = true;
            break;
        }
    }
    assert!(refused, "unterminated line grew past the carry bound");
}
