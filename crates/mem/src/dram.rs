//! Main-memory model — the DRAMSim2 substitution.
//!
//! Table I specifies a 50–100-cycle latency window. The model keeps one
//! open row per bank: accesses hitting the open row pay the minimum
//! latency, row conflicts pay the maximum, cold banks land in between.
//! Latency is therefore deterministic in the access sequence, and counts
//! are tracked per region for Figures 16–19.

use crate::traffic::TrafficMatrix;
use tcor_common::{BlockAddr, MemoryParams};
use tcor_pbuf::Region;

/// Number of modeled DRAM banks.
pub const NUM_BANKS: usize = 8;

/// Blocks per DRAM row (4 KiB rows of 64-byte blocks).
pub const BLOCKS_PER_ROW: u64 = 64;

/// The main-memory model.
#[derive(Clone, Debug)]
pub struct MainMemory {
    params: MemoryParams,
    open_row: [Option<u64>; NUM_BANKS],
    traffic: TrafficMatrix,
    total_latency: u64,
}

impl MainMemory {
    /// Creates memory with all banks closed.
    pub fn new(params: MemoryParams) -> Self {
        MainMemory {
            params,
            open_row: [None; NUM_BANKS],
            traffic: TrafficMatrix::default(),
            total_latency: 0,
        }
    }

    fn bank_and_row(block: BlockAddr) -> (usize, u64) {
        let row = block.0 / BLOCKS_PER_ROW;
        ((row % NUM_BANKS as u64) as usize, row / NUM_BANKS as u64)
    }

    /// Performs a read; returns its latency in cycles.
    pub fn read(&mut self, block: BlockAddr) -> u32 {
        let lat = self.latency(block);
        self.traffic.record_mm_read(Region::of_block(block));
        lat
    }

    /// Performs a write; returns its latency in cycles (writes are
    /// posted, but the latency models bank occupancy for bandwidth
    /// accounting).
    pub fn write(&mut self, block: BlockAddr) -> u32 {
        let lat = self.latency(block);
        self.traffic.record_mm_write(Region::of_block(block));
        lat
    }

    fn latency(&mut self, block: BlockAddr) -> u32 {
        let (bank, row) = Self::bank_and_row(block);
        let lat = match self.open_row[bank] {
            Some(open) if open == row => self.params.min_latency,
            Some(_) => self.params.max_latency,
            None => (self.params.min_latency + self.params.max_latency) / 2,
        };
        self.open_row[bank] = Some(row);
        self.total_latency += lat as u64;
        lat
    }

    /// Per-region access counts.
    pub fn traffic(&self) -> &TrafficMatrix {
        &self.traffic
    }

    /// Sum of all access latencies (a bandwidth-pressure proxy).
    pub fn total_latency(&self) -> u64 {
        self.total_latency
    }

    /// Total accesses (reads + writes) across regions.
    pub fn total_accesses(&self) -> u64 {
        self.traffic.total_mm_accesses()
    }

    /// Zeroes the traffic counters (bank state is kept — steady-state
    /// multi-frame runs reset per frame).
    pub fn reset_counters(&mut self) {
        self.traffic = TrafficMatrix::default();
        self.total_latency = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcor_pbuf::region::bases;

    fn mem() -> MainMemory {
        MainMemory::new(MemoryParams::default())
    }

    #[test]
    fn row_hit_is_min_latency() {
        let mut m = mem();
        let a = BlockAddr(0);
        let first = m.read(a);
        let second = m.read(BlockAddr(1)); // same row
        assert_eq!(first, 75); // cold bank: midpoint
        assert_eq!(second, 50);
    }

    #[test]
    fn row_conflict_is_max_latency() {
        let mut m = mem();
        m.read(BlockAddr(0));
        // Same bank (row stride of NUM_BANKS rows), different row.
        let conflict = m.read(BlockAddr(BLOCKS_PER_ROW * NUM_BANKS as u64));
        assert_eq!(conflict, 100);
    }

    #[test]
    fn different_banks_do_not_conflict() {
        let mut m = mem();
        m.read(BlockAddr(0));
        let other_bank = m.read(BlockAddr(BLOCKS_PER_ROW)); // next bank
        assert_eq!(other_bank, 75); // cold, not conflict
    }

    #[test]
    fn latencies_stay_in_table_one_window() {
        let mut m = mem();
        for i in 0..1000u64 {
            let lat = m.read(BlockAddr(i * 977));
            assert!((50..=100).contains(&lat));
        }
    }

    #[test]
    fn traffic_is_classified_by_region() {
        let mut m = mem();
        m.read(tcor_common::Address(bases::PB_ATTRIBUTES).block());
        m.write(tcor_common::Address(bases::FRAME_BUFFER).block());
        assert_eq!(m.traffic().region(Region::PbAttributes).mm_reads, 1);
        assert_eq!(m.traffic().region(Region::FrameBuffer).mm_writes, 1);
        assert_eq!(m.total_accesses(), 2);
    }
}
