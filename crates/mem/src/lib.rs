//! # tcor-mem
//!
//! The shared memory hierarchy below the L1s (Fig. 5): the L2 cache with
//! TCOR's dead-line-aware replacement (§III.D), a bank-aware main-memory
//! model standing in for DRAMSim2, and per-region traffic accounting that
//! feeds Figures 14–19 directly.
//!
//! ## TCOR L2 enhancements (§III.D)
//!
//! Every L2 line carries a 2-bit Parameter-Buffer kind and a 12-bit
//! last-use tile (packed in the engine's per-line user word, see
//! [`PbTag`]). The Tile Fetcher signals tile completions; a PB line whose
//! last-use tile has completed is **dead**:
//!
//! * replacement priority: dead PB lines → non-PB lines → live PB lines,
//!   LRU within each class ([`L2Policy`]);
//! * dead dirty lines are dropped without a main-memory write-back.
//!
//! ```
//! use tcor_cache::AccessKind;
//! use tcor_common::{Address, CacheParams, MemoryParams, TileRank};
//! use tcor_mem::{L2Mode, MemoryHierarchy, PbTag};
//!
//! let mut h = MemoryHierarchy::new(
//!     CacheParams::new(1 << 20, 64, 8, 12),
//!     MemoryParams::default(),
//!     L2Mode::TcorEnhanced,
//! );
//! // A dirty PB-Attributes line whose last use is tile rank 0...
//! let block = Address(0x2000_0000).block();
//! h.access(block, AccessKind::Write, PbTag::attributes(TileRank(0)));
//! // ...becomes dead once the Tile Fetcher completes tile 0.
//! h.tile_done();
//! assert_eq!(h.completed_tiles(), 1);
//! ```

pub mod dram;
pub mod hierarchy;
pub mod l2policy;
pub mod pbtag;
pub mod traffic;

pub use dram::MainMemory;
pub use hierarchy::{L2Mode, MemoryHierarchy};
pub use l2policy::{L2Policy, L2PolicyMode};
pub use pbtag::{PbKind, PbTag};
pub use traffic::{RegionTraffic, TrafficMatrix};
