//! The shared L2 + main memory, wired together with the completed-tile
//! watermark.

use crate::dram::MainMemory;
use crate::l2policy::{L2Policy, L2PolicyMode};
use crate::pbtag::PbTag;
use crate::traffic::TrafficMatrix;
use std::cell::Cell;
use std::rc::Rc;
use tcor_cache::{AccessKind, AccessMeta, Cache, Indexing};
use tcor_common::{AccessStats, BlockAddr, CacheParams, MemoryParams};
use tcor_pbuf::Region;

/// Which L2 behaviour the hierarchy models.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum L2Mode {
    /// Baseline: LRU, no PB tags, every dirty eviction written back.
    Baseline,
    /// TCOR: dead-line-priority replacement; dead dirty lines dropped
    /// without write-back (§III.D).
    TcorEnhanced,
}

/// The memory system below the L1 caches.
#[derive(Clone, Debug)]
pub struct MemoryHierarchy {
    mode: L2Mode,
    l2: Cache<L2Policy>,
    mem: MainMemory,
    watermark: Rc<Cell<u64>>,
    traffic: TrafficMatrix,
    dead_drops: u64,
    /// Blocks actually written back to DRAM at the two disposal sites
    /// (eviction and end-of-frame drain). Counted independently of the L2
    /// engine's `writebacks` stat so the audit can check
    /// `l2 writebacks == wb_blocks + dead_drops`.
    wb_blocks: u64,
    /// Parameter-Buffer blocks filled from DRAM on L2 read misses —
    /// counted at the fill site, independently of the DRAM model's own
    /// traffic matrix, so the audit can cross-check PB bytes from DRAM.
    pb_fill_blocks: u64,
    l2_latency: u32,
}

impl MemoryHierarchy {
    /// Creates the hierarchy from cache/memory parameters.
    pub fn new(l2_params: CacheParams, mem_params: MemoryParams, mode: L2Mode) -> Self {
        let watermark = Rc::new(Cell::new(0));
        let policy_mode = match mode {
            L2Mode::Baseline => L2PolicyMode::BaselineLru,
            L2Mode::TcorEnhanced => L2PolicyMode::DeadLinePriority,
        };
        MemoryHierarchy {
            mode,
            l2: Cache::new(
                l2_params,
                Indexing::Modulo,
                L2Policy::new(policy_mode, watermark.clone()),
            ),
            mem: MainMemory::new(mem_params),
            watermark,
            traffic: TrafficMatrix::default(),
            dead_drops: 0,
            wb_blocks: 0,
            pb_fill_blocks: 0,
            l2_latency: l2_params.latency,
        }
    }

    /// The L2 behaviour mode.
    pub fn mode(&self) -> L2Mode {
        self.mode
    }

    /// An access from an L1 (read miss, write-back, write miss or TCOR
    /// bypass) arriving at the L2. Returns the total latency in cycles
    /// (L2 hit latency, plus main-memory latency on an L2 read miss).
    ///
    /// `tag` classifies the block for the dead-line machinery; pass
    /// [`PbTag::NONE`] for non-Parameter-Buffer data.
    pub fn access(&mut self, block: BlockAddr, kind: AccessKind, tag: PbTag) -> u32 {
        let region = Region::of_block(block);
        match kind {
            AccessKind::Read => self.traffic.record_l2_read(region),
            AccessKind::Write => self.traffic.record_l2_write(region),
        }
        let meta = AccessMeta::with_user(u64::MAX, tag.encode());
        let out = self.l2.access(block, kind, meta);
        let mut latency = self.l2_latency;
        if !out.hit && kind == AccessKind::Read {
            // Read miss: fill from main memory. (Write misses allocate
            // without a fill read: PB writes are full-line.)
            latency += self.mem.read(block);
            if matches!(region, Region::PbLists | Region::PbAttributes) {
                self.pb_fill_blocks += 1;
            }
        }
        if let Some(ev) = out.evicted {
            if ev.dirty {
                let etag = PbTag::decode(ev.meta.user);
                if self.mode == L2Mode::TcorEnhanced && etag.is_dead(self.watermark.get()) {
                    self.dead_drops += 1;
                } else {
                    self.mem.write(ev.addr);
                    self.wb_blocks += 1;
                }
            }
        }
        latency
    }

    /// A write that bypasses the L2 entirely (the Color Buffer flush of
    /// Fig. 2 goes straight to main memory).
    pub fn write_direct(&mut self, block: BlockAddr) {
        self.mem.write(block);
    }

    /// Warm-start: installs a clean line as left over from the previous
    /// frame (the Parameter Buffer is rebuilt at the same addresses every
    /// frame, so in steady state the L2 holds much of last frame's PB).
    /// No statistics or traffic are recorded.
    pub fn warm_fill(&mut self, block: BlockAddr, tag: PbTag) {
        self.l2
            .fill_clean(block, AccessMeta::with_user(u64::MAX, tag.encode()));
    }

    /// Tile Fetcher completion signal (§III.D.1): advances the
    /// completed-tiles watermark.
    pub fn tile_done(&mut self) {
        self.watermark.set(self.watermark.get() + 1);
    }

    /// Completed-tile count.
    pub fn completed_tiles(&self) -> u64 {
        self.watermark.get()
    }

    /// Frame boundary for steady-state (multi-frame session) runs: the
    /// L2 keeps its contents — next frame's Parameter Buffer writes will
    /// overwrite the stale lines in place — and only the completed-tile
    /// watermark resets.
    pub fn frame_boundary(&mut self) {
        self.watermark.set(0);
    }

    /// Zeroes every counter (L2 stats, traffic matrices, dead drops)
    /// while keeping cache and DRAM state — call at the start of a
    /// steady-state frame so the report covers exactly that frame.
    pub fn reset_counters(&mut self) {
        self.l2.reset_stats();
        self.traffic = TrafficMatrix::default();
        self.mem.reset_counters();
        self.dead_drops = 0;
        self.wb_blocks = 0;
        self.pb_fill_blocks = 0;
    }

    /// End of frame: every remaining dirty L2 line is disposed of — the
    /// Parameter Buffer is dead in its entirety (it is rebuilt next
    /// frame), so TCOR drops PB lines while the baseline writes them back.
    /// Resets the watermark for the next frame.
    pub fn end_frame(&mut self) {
        let drained = self.l2.drain();
        for ev in drained {
            if ev.dirty {
                let etag = PbTag::decode(ev.meta.user);
                let pb = etag.kind != crate::pbtag::PbKind::None;
                if self.mode == L2Mode::TcorEnhanced && pb {
                    self.dead_drops += 1;
                } else {
                    self.mem.write(ev.addr);
                    self.wb_blocks += 1;
                }
            }
        }
        self.watermark.set(0);
    }

    /// L2 hit/miss statistics.
    pub fn l2_stats(&self) -> &AccessStats {
        self.l2.stats()
    }

    /// Traffic arriving at the L2, per region.
    pub fn l2_traffic(&self) -> &TrafficMatrix {
        &self.traffic
    }

    /// Traffic reaching main memory, per region.
    pub fn mm_traffic(&self) -> &TrafficMatrix {
        self.mem.traffic()
    }

    /// Dirty lines dropped dead without write-back (TCOR only).
    pub fn dead_drops(&self) -> u64 {
        self.dead_drops
    }

    /// Blocks written back to DRAM, counted at the disposal sites.
    pub fn writeback_blocks(&self) -> u64 {
        self.wb_blocks
    }

    /// Parameter-Buffer blocks filled from DRAM, counted at the fill site.
    pub fn pb_fill_blocks(&self) -> u64 {
        self.pb_fill_blocks
    }

    /// The main-memory model.
    pub fn memory(&self) -> &MainMemory {
        &self.mem
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcor_common::TileRank;
    use tcor_pbuf::region::bases;

    fn hierarchy(mode: L2Mode) -> MemoryHierarchy {
        MemoryHierarchy::new(
            CacheParams::new(512, 64, 0, 12), // 8-line L2 for micro-tests
            MemoryParams::default(),
            mode,
        )
    }

    fn pb_block(i: u64) -> BlockAddr {
        tcor_common::Address(bases::PB_ATTRIBUTES + i * 64).block()
    }

    #[test]
    fn read_miss_goes_to_memory() {
        let mut h = hierarchy(L2Mode::Baseline);
        let lat = h.access(pb_block(0), AccessKind::Read, PbTag::NONE);
        assert!(lat > 12, "miss latency {lat} must include memory");
        let lat2 = h.access(pb_block(0), AccessKind::Read, PbTag::NONE);
        assert_eq!(lat2, 12, "hit pays only L2 latency");
        assert_eq!(h.mm_traffic().region(Region::PbAttributes).mm_reads, 1);
    }

    #[test]
    fn write_miss_allocates_without_fill() {
        let mut h = hierarchy(L2Mode::Baseline);
        h.access(pb_block(0), AccessKind::Write, PbTag::NONE);
        assert_eq!(h.mm_traffic().region(Region::PbAttributes).mm_reads, 0);
        assert_eq!(h.l2_traffic().region(Region::PbAttributes).l2_writes, 1);
    }

    #[test]
    fn baseline_writes_back_dirty_evictions() {
        let mut h = hierarchy(L2Mode::Baseline);
        for i in 0..8 {
            h.access(
                pb_block(i),
                AccessKind::Write,
                PbTag::attributes(TileRank(0)),
            );
        }
        h.access(pb_block(100), AccessKind::Read, PbTag::NONE);
        assert_eq!(h.mm_traffic().region(Region::PbAttributes).mm_writes, 1);
        assert_eq!(h.dead_drops(), 0);
    }

    #[test]
    fn tcor_drops_dead_dirty_lines() {
        let mut h = hierarchy(L2Mode::TcorEnhanced);
        for i in 0..8 {
            h.access(
                pb_block(i),
                AccessKind::Write,
                PbTag::attributes(TileRank(0)),
            );
        }
        h.tile_done(); // tile 0 completed: all 8 lines now dead
        h.access(pb_block(100), AccessKind::Read, PbTag::NONE);
        assert_eq!(h.mm_traffic().region(Region::PbAttributes).mm_writes, 0);
        assert_eq!(h.dead_drops(), 1);
    }

    #[test]
    fn tcor_live_lines_still_written_back() {
        let mut h = hierarchy(L2Mode::TcorEnhanced);
        for i in 0..8 {
            h.access(
                pb_block(i),
                AccessKind::Write,
                PbTag::attributes(TileRank(5)),
            );
        }
        // No tile completed: lines are live; eviction writes back.
        h.access(pb_block(100), AccessKind::Read, PbTag::NONE);
        assert_eq!(h.mm_traffic().region(Region::PbAttributes).mm_writes, 1);
    }

    #[test]
    fn end_frame_disposal_differs_by_mode() {
        for (mode, expect_writes, expect_drops) in
            [(L2Mode::Baseline, 4u64, 0u64), (L2Mode::TcorEnhanced, 0, 4)]
        {
            let mut h = hierarchy(mode);
            for i in 0..4 {
                h.access(
                    pb_block(i),
                    AccessKind::Write,
                    PbTag::attributes(TileRank(9)),
                );
            }
            h.end_frame();
            assert_eq!(
                h.mm_traffic().region(Region::PbAttributes).mm_writes,
                expect_writes,
                "{mode:?}"
            );
            assert_eq!(h.dead_drops(), expect_drops, "{mode:?}");
            assert_eq!(h.completed_tiles(), 0);
        }
    }

    #[test]
    fn disposal_counters_balance_engine_writebacks() {
        // The conservation invariant the audit layer checks: every dirty
        // eviction the engine counts is either written to DRAM (wb_blocks)
        // or dropped dead (dead_drops) — in both modes.
        for mode in [L2Mode::Baseline, L2Mode::TcorEnhanced] {
            let mut h = hierarchy(mode);
            for i in 0..12 {
                h.access(
                    pb_block(i),
                    AccessKind::Write,
                    PbTag::attributes(TileRank(i as u32 % 3)),
                );
            }
            h.tile_done();
            h.tile_done(); // ranks 0 and 1 now dead
            for i in 12..16 {
                h.access(pb_block(i), AccessKind::Read, PbTag::NONE);
            }
            h.end_frame();
            assert_eq!(
                h.l2_stats().writebacks,
                h.writeback_blocks() + h.dead_drops(),
                "{mode:?}"
            );
        }
    }

    #[test]
    fn pb_fill_site_matches_dram_traffic() {
        let mut h = hierarchy(L2Mode::TcorEnhanced);
        for i in 0..5 {
            h.access(
                pb_block(i),
                AccessKind::Read,
                PbTag::attributes(TileRank(1)),
            );
        }
        h.access(
            pb_block(0),
            AccessKind::Read,
            PbTag::attributes(TileRank(1)),
        ); // hit: no fill
        let fb = tcor_common::Address(bases::FRAME_BUFFER).block();
        h.access(fb, AccessKind::Read, PbTag::NONE); // non-PB fill: not counted
        assert_eq!(h.pb_fill_blocks(), 5);
        assert_eq!(
            h.pb_fill_blocks(),
            h.mm_traffic().parameter_buffer().mm_reads
        );
    }

    #[test]
    fn direct_writes_skip_l2() {
        let mut h = hierarchy(L2Mode::Baseline);
        let fb = tcor_common::Address(bases::FRAME_BUFFER).block();
        h.write_direct(fb);
        assert_eq!(h.l2_traffic().total_l2_accesses(), 0);
        assert_eq!(h.mm_traffic().region(Region::FrameBuffer).mm_writes, 1);
    }
}
