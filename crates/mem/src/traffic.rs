//! Per-region traffic accounting.
//!
//! Figures 14–19 are direct reads of these counters: Parameter Buffer
//! accesses to the L2 (reads/writes), Parameter Buffer accesses to main
//! memory, and total main-memory accesses.

use tcor_pbuf::Region;

/// Counters for one memory region.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RegionTraffic {
    /// Reads arriving at the L2 for this region (L1 misses).
    pub l2_reads: u64,
    /// Writes arriving at the L2 (L1 write-backs, write misses and TCOR
    /// bypasses).
    pub l2_writes: u64,
    /// Reads reaching main memory (L2 misses).
    pub mm_reads: u64,
    /// Writes reaching main memory (L2 write-backs and direct writes).
    pub mm_writes: u64,
}

impl RegionTraffic {
    /// Total L2 accesses.
    pub fn l2_total(&self) -> u64 {
        self.l2_reads + self.l2_writes
    }

    /// Total main-memory accesses.
    pub fn mm_total(&self) -> u64 {
        self.mm_reads + self.mm_writes
    }
}

impl std::ops::Add for RegionTraffic {
    type Output = RegionTraffic;

    fn add(self, rhs: RegionTraffic) -> RegionTraffic {
        RegionTraffic {
            l2_reads: self.l2_reads + rhs.l2_reads,
            l2_writes: self.l2_writes + rhs.l2_writes,
            mm_reads: self.mm_reads + rhs.mm_reads,
            mm_writes: self.mm_writes + rhs.mm_writes,
        }
    }
}

/// Traffic counters for every region.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TrafficMatrix {
    regions: [RegionTraffic; Region::ALL.len()],
}

impl TrafficMatrix {
    fn idx(region: Region) -> usize {
        Region::ALL
            .iter()
            .position(|&r| r == region)
            .expect("region in ALL")
    }

    /// Counters for one region.
    pub fn region(&self, region: Region) -> &RegionTraffic {
        &self.regions[Self::idx(region)]
    }

    /// Records an L2 read for `region`.
    pub fn record_l2_read(&mut self, region: Region) {
        self.regions[Self::idx(region)].l2_reads += 1;
    }

    /// Records an L2 write for `region`.
    pub fn record_l2_write(&mut self, region: Region) {
        self.regions[Self::idx(region)].l2_writes += 1;
    }

    /// Records a main-memory read for `region`.
    pub fn record_mm_read(&mut self, region: Region) {
        self.regions[Self::idx(region)].mm_reads += 1;
    }

    /// Records a main-memory write for `region`.
    pub fn record_mm_write(&mut self, region: Region) {
        self.regions[Self::idx(region)].mm_writes += 1;
    }

    /// Combined Parameter Buffer traffic (PB-Lists + PB-Attributes) — the
    /// quantity Figures 14–17 normalize.
    pub fn parameter_buffer(&self) -> RegionTraffic {
        *self.region(Region::PbLists) + *self.region(Region::PbAttributes)
    }

    /// Total main-memory accesses over every region (Figures 18–19).
    pub fn total_mm_accesses(&self) -> u64 {
        self.regions.iter().map(RegionTraffic::mm_total).sum()
    }

    /// Total L2 accesses over every region.
    pub fn total_l2_accesses(&self) -> u64 {
        self.regions.iter().map(RegionTraffic::l2_total).sum()
    }

    /// Merges another matrix into this one.
    pub fn merge(&mut self, other: &TrafficMatrix) {
        for (a, b) in self.regions.iter_mut().zip(other.regions.iter()) {
            *a = *a + *b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate_by_region() {
        let mut t = TrafficMatrix::default();
        t.record_l2_read(Region::PbLists);
        t.record_l2_read(Region::PbLists);
        t.record_l2_write(Region::PbAttributes);
        t.record_mm_read(Region::Textures);
        t.record_mm_write(Region::FrameBuffer);
        assert_eq!(t.region(Region::PbLists).l2_reads, 2);
        assert_eq!(t.region(Region::PbAttributes).l2_writes, 1);
        assert_eq!(t.parameter_buffer().l2_total(), 3);
        assert_eq!(t.total_mm_accesses(), 2);
        assert_eq!(t.total_l2_accesses(), 3);
    }

    #[test]
    fn merge_is_componentwise() {
        let mut a = TrafficMatrix::default();
        a.record_mm_read(Region::PbLists);
        let mut b = TrafficMatrix::default();
        b.record_mm_read(Region::PbLists);
        b.record_mm_write(Region::Other);
        a.merge(&b);
        assert_eq!(a.region(Region::PbLists).mm_reads, 2);
        assert_eq!(a.region(Region::Other).mm_writes, 1);
    }
}
