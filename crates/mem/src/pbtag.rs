//! The per-L2-line Parameter Buffer tag (§III.D.1).
//!
//! Hardware adds two fields to each L2 line: a 2-bit kind (PB-Lists /
//! PB-Attributes / neither) and a 12-bit last-use tile. The simulator
//! packs both into the cache engine's per-line `user` word.

use tcor_common::TileRank;

/// What a line holds, from the L2's point of view.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum PbKind {
    /// Not Parameter Buffer data (textures, vertices, instructions…).
    #[default]
    None,
    /// PB-Lists data.
    Lists,
    /// PB-Attributes data.
    Attributes,
}

impl PbKind {
    fn code(self) -> u64 {
        match self {
            PbKind::None => 0,
            PbKind::Lists => 1,
            PbKind::Attributes => 2,
        }
    }

    fn from_code(c: u64) -> Self {
        match c {
            1 => PbKind::Lists,
            2 => PbKind::Attributes,
            _ => PbKind::None,
        }
    }
}

/// The (kind, last-use tile rank) pair tagged onto an L2 line.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub struct PbTag {
    /// Which PB section the line holds, if any.
    pub kind: PbKind,
    /// Traversal rank of the last tile that will use this line
    /// (meaningless when `kind == None`).
    pub last_use: TileRank,
}

impl PbTag {
    /// Tag for non-PB data.
    pub const NONE: PbTag = PbTag {
        kind: PbKind::None,
        last_use: TileRank(0),
    };

    /// Tag for a PB-Lists line whose tile has the given rank (a list line
    /// is used by exactly one tile, which is therefore its last use).
    pub fn lists(last_use: TileRank) -> Self {
        PbTag {
            kind: PbKind::Lists,
            last_use,
        }
    }

    /// Tag for a PB-Attributes line with the given last-use rank.
    pub fn attributes(last_use: TileRank) -> Self {
        PbTag {
            kind: PbKind::Attributes,
            last_use,
        }
    }

    /// Packs into the engine's per-line user word, exactly as the hardware
    /// tag stores it: 2-bit kind above a 12-bit last-use tile. Ranks
    /// beyond [`TileRank::OPT_MAX`] saturate (§III.C) — hardware has no
    /// wider field, and anything past the screen is equally far away.
    /// `PbTag::NONE` encodes to 0, the "no information" user word.
    pub fn encode(self) -> u64 {
        (self.kind.code() << 12) | self.last_use.saturated().value() as u64
    }

    /// Unpacks from the user word.
    pub fn decode(user: u64) -> Self {
        PbTag {
            kind: PbKind::from_code((user >> 12) & 0b11),
            last_use: TileRank((user & 0xFFF) as u32),
        }
    }

    /// Whether this line is dead once `completed_tiles` tiles have
    /// finished: its last-use tile's rank is below the watermark.
    /// Non-PB lines are never "dead" (the L2 cannot know).
    pub fn is_dead(self, completed_tiles: u64) -> bool {
        self.kind != PbKind::None && (self.last_use.value() as u64) < completed_tiles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        for tag in [
            PbTag::NONE,
            PbTag::lists(TileRank(0)),
            PbTag::lists(TileRank(4095)),
            PbTag::attributes(TileRank(77)),
        ] {
            assert_eq!(PbTag::decode(tag.encode()), tag);
        }
    }

    #[test]
    fn encode_saturates_at_twelve_bit_boundary() {
        // 4095 is the last representable rank; 4096 and NEVER collapse to it.
        assert_eq!(
            PbTag::lists(TileRank(4095)).encode(),
            PbTag::lists(TileRank(4096)).encode()
        );
        assert_eq!(
            PbTag::decode(PbTag::attributes(TileRank::NEVER).encode()),
            PbTag::attributes(TileRank(4095))
        );
        // 4094 is still distinct from the saturation point.
        assert_ne!(
            PbTag::lists(TileRank(4094)).encode(),
            PbTag::lists(TileRank(4095)).encode()
        );
        // The kind field must survive a saturated rank (no bit overlap).
        assert_eq!(
            PbTag::decode(PbTag::lists(TileRank(4096)).encode()).kind,
            PbKind::Lists
        );
        assert_eq!(PbTag::NONE.encode(), 0, "NONE must stay the zero word");
    }

    #[test]
    fn deadness_watermark() {
        let t = PbTag::attributes(TileRank(5));
        assert!(!t.is_dead(0));
        assert!(!t.is_dead(5)); // tile 5 not yet complete
        assert!(t.is_dead(6)); // completed tiles 0..=5
    }

    #[test]
    fn non_pb_never_dead() {
        assert!(!PbTag::NONE.is_dead(u32::MAX as u64 + 1));
    }

    #[test]
    fn lists_line_dead_after_its_tile() {
        let t = PbTag::lists(TileRank(0));
        assert!(!t.is_dead(0));
        assert!(t.is_dead(1));
    }
}
