//! The L2 replacement policy (§III.D.2).
//!
//! Baseline mode is plain LRU. TCOR mode prioritizes eviction classes:
//!
//! 1. **dead PB lines** — their last-use tile has completed; they will
//!    never be read again and need no write-back;
//! 2. **non-PB lines** — always clean (textures, vertices, instructions),
//!    so cheap to replace;
//! 3. **live PB lines** — may be dirty and will be read again.
//!
//! LRU orders victims within each class. The completed-tile watermark is
//! shared with the hierarchy through an `Rc<Cell<u64>>` — the hardware
//! equivalent is the Tile Fetcher's completion signal wire into the L2
//! control logic.

use crate::pbtag::PbTag;
use std::cell::Cell;
use std::rc::Rc;
use tcor_cache::cache::Line;
use tcor_cache::policy::ReplacementPolicy;
use tcor_cache::AccessMeta;

/// Replacement behaviour selector for [`L2Policy`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum L2PolicyMode {
    /// Plain LRU (the baseline L2).
    BaselineLru,
    /// TCOR's dead-line-priority replacement.
    DeadLinePriority,
}

/// The L2 replacement policy, parameterized by mode.
#[derive(Clone, Debug)]
pub struct L2Policy {
    mode: L2PolicyMode,
    watermark: Rc<Cell<u64>>,
    clock: u64,
    last_touch: Vec<u64>,
    ways: usize,
}

impl L2Policy {
    /// Creates the policy; `watermark` is the shared completed-tiles
    /// counter (advanced by the hierarchy on Tile Fetcher signals).
    pub fn new(mode: L2PolicyMode, watermark: Rc<Cell<u64>>) -> Self {
        L2Policy {
            mode,
            watermark,
            clock: 0,
            last_touch: Vec::new(),
            ways: 0,
        }
    }

    /// The active mode.
    pub fn mode(&self) -> L2PolicyMode {
        self.mode
    }

    fn touch(&mut self, set: usize, way: usize) {
        self.clock += 1;
        self.last_touch[set * self.ways + way] = self.clock;
    }

    /// Eviction class of a line: lower is evicted first.
    fn class(&self, line: &Line) -> u8 {
        let tag = PbTag::decode(line.meta().user);
        if tag.is_dead(self.watermark.get()) {
            0
        } else if tag.kind == crate::pbtag::PbKind::None {
            1
        } else {
            2
        }
    }
}

impl ReplacementPolicy for L2Policy {
    fn name(&self) -> &'static str {
        match self.mode {
            L2PolicyMode::BaselineLru => "L2-LRU",
            L2PolicyMode::DeadLinePriority => "L2-TCOR",
        }
    }

    fn attach(&mut self, num_sets: usize, ways: usize) {
        self.ways = ways;
        self.last_touch = vec![0; num_sets * ways];
        self.clock = 0;
    }

    fn on_hit(&mut self, set: usize, way: usize, _meta: &AccessMeta) {
        self.touch(set, way);
    }

    fn on_fill(&mut self, set: usize, way: usize, _meta: &AccessMeta) {
        self.touch(set, way);
    }

    fn on_invalidate(&mut self, set: usize, way: usize) {
        self.last_touch[set * self.ways + way] = 0;
    }

    fn victim(&mut self, set: usize, lines: &[Line]) -> usize {
        // An empty candidate slice cannot happen (the engine only asks for
        // a victim in a full set), but way 0 is a safe infallible answer —
        // no panic path survives in victim selection.
        let base = set * self.ways;
        match self.mode {
            L2PolicyMode::BaselineLru => (0..lines.len())
                .min_by_key(|&w| self.last_touch[base + w])
                .unwrap_or(0),
            L2PolicyMode::DeadLinePriority => (0..lines.len())
                .min_by_key(|&w| (self.class(&lines[w]), self.last_touch[base + w]))
                .unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcor_cache::{AccessKind, Cache, Indexing};
    use tcor_common::{BlockAddr, CacheParams, TileRank};

    fn tcor_l2(watermark: Rc<Cell<u64>>) -> Cache<L2Policy> {
        // 4 lines, fully associative, for policy micro-tests.
        Cache::new(
            CacheParams::new(256, 64, 0, 12),
            Indexing::Modulo,
            L2Policy::new(L2PolicyMode::DeadLinePriority, watermark),
        )
    }

    fn meta(tag: PbTag) -> AccessMeta {
        AccessMeta::with_user(u64::MAX, tag.encode())
    }

    #[test]
    fn dead_lines_evicted_first_even_if_recent() {
        let wm = Rc::new(Cell::new(0));
        let mut l2 = tcor_l2(wm.clone());
        l2.access(
            BlockAddr(1),
            AccessKind::Write,
            meta(PbTag::attributes(TileRank(0))),
        );
        l2.access(BlockAddr(2), AccessKind::Read, meta(PbTag::NONE));
        l2.access(
            BlockAddr(3),
            AccessKind::Write,
            meta(PbTag::attributes(TileRank(9))),
        );
        l2.access(
            BlockAddr(1),
            AccessKind::Read,
            meta(PbTag::attributes(TileRank(0))),
        ); // refresh LRU
        l2.access(BlockAddr(4), AccessKind::Read, meta(PbTag::NONE));
        // Tile 0 completes -> block 1 is dead despite being recently used.
        wm.set(1);
        let out = l2.access(BlockAddr(5), AccessKind::Read, meta(PbTag::NONE));
        assert_eq!(out.evicted.unwrap().addr, BlockAddr(1));
    }

    #[test]
    fn dead_line_boundary_at_watermark() {
        // A PB line with last_use == watermark is LIVE (its tile has not
        // completed yet); only last_use < watermark is dead. Guards the
        // audit's OPT/deadness invariants at the off-by-one boundary.
        let wm = Rc::new(Cell::new(0));
        let mut l2 = tcor_l2(wm.clone());
        l2.access(
            BlockAddr(1),
            AccessKind::Write,
            meta(PbTag::attributes(TileRank(3))),
        );
        l2.access(
            BlockAddr(2),
            AccessKind::Write,
            meta(PbTag::attributes(TileRank(4))),
        );
        l2.access(BlockAddr(3), AccessKind::Read, meta(PbTag::NONE));
        l2.access(BlockAddr(4), AccessKind::Read, meta(PbTag::NONE));
        // Tiles 0..=3 complete: rank 3 is below the watermark (dead), rank 4
        // sits exactly on it (live).
        wm.set(4);
        let out = l2.access(BlockAddr(5), AccessKind::Read, meta(PbTag::NONE));
        assert_eq!(
            out.evicted.unwrap().addr,
            BlockAddr(1),
            "rank 3 < 4 is dead"
        );
        // Next eviction must take a non-PB line, NOT the rank-4 line: if the
        // boundary were `<=`, block 2 would be class 0 and go first.
        let out = l2.access(BlockAddr(6), AccessKind::Read, meta(PbTag::NONE));
        assert_eq!(
            out.evicted.unwrap().addr,
            BlockAddr(3),
            "rank == watermark must be live"
        );
        assert!(l2.contains(BlockAddr(2)));
    }

    #[test]
    fn none_meta_hit_keeps_line_classified_as_pb() {
        // Regression for the hit-path meta clobber: a requester with no PB
        // knowledge (user word 0) hitting a tagged line must not strip its
        // tag; the line still turns dead when its tile completes.
        let wm = Rc::new(Cell::new(0));
        let mut l2 = tcor_l2(wm.clone());
        l2.access(
            BlockAddr(1),
            AccessKind::Write,
            meta(PbTag::attributes(TileRank(0))),
        );
        l2.access(BlockAddr(2), AccessKind::Read, meta(PbTag::NONE));
        l2.access(BlockAddr(3), AccessKind::Read, meta(PbTag::NONE));
        l2.access(BlockAddr(4), AccessKind::Read, meta(PbTag::NONE));
        // Tag-blind hit on the PB line (AccessMeta::NONE has user == 0).
        assert!(
            l2.access(BlockAddr(1), AccessKind::Read, AccessMeta::NONE)
                .hit
        );
        wm.set(1);
        let out = l2.access(BlockAddr(5), AccessKind::Read, meta(PbTag::NONE));
        assert_eq!(
            out.evicted.unwrap().addr,
            BlockAddr(1),
            "the line must still be a dead PB line, not recently-touched non-PB"
        );
    }

    #[test]
    fn non_pb_preferred_over_live_pb() {
        let wm = Rc::new(Cell::new(0));
        let mut l2 = tcor_l2(wm);
        l2.access(
            BlockAddr(1),
            AccessKind::Write,
            meta(PbTag::attributes(TileRank(9))),
        );
        l2.access(BlockAddr(2), AccessKind::Read, meta(PbTag::NONE));
        l2.access(
            BlockAddr(3),
            AccessKind::Write,
            meta(PbTag::lists(TileRank(5))),
        );
        l2.access(
            BlockAddr(4),
            AccessKind::Write,
            meta(PbTag::attributes(TileRank(7))),
        );
        // No dead lines; the single non-PB line (2) goes first even though
        // others are older or newer.
        let out = l2.access(BlockAddr(5), AccessKind::Read, meta(PbTag::NONE));
        assert_eq!(out.evicted.unwrap().addr, BlockAddr(2));
    }

    #[test]
    fn lru_within_class() {
        let wm = Rc::new(Cell::new(0));
        let mut l2 = tcor_l2(wm);
        for b in 1..=4u64 {
            l2.access(BlockAddr(b), AccessKind::Read, meta(PbTag::NONE));
        }
        l2.access(BlockAddr(1), AccessKind::Read, meta(PbTag::NONE));
        let out = l2.access(BlockAddr(9), AccessKind::Read, meta(PbTag::NONE));
        assert_eq!(out.evicted.unwrap().addr, BlockAddr(2));
    }

    #[test]
    fn baseline_mode_is_plain_lru_ignoring_tags() {
        let wm = Rc::new(Cell::new(100)); // everything PB would be dead
        let mut l2 = Cache::new(
            CacheParams::new(256, 64, 0, 12),
            Indexing::Modulo,
            L2Policy::new(L2PolicyMode::BaselineLru, wm),
        );
        l2.access(BlockAddr(1), AccessKind::Read, meta(PbTag::NONE));
        l2.access(
            BlockAddr(2),
            AccessKind::Write,
            meta(PbTag::attributes(TileRank(0))),
        );
        l2.access(BlockAddr(3), AccessKind::Read, meta(PbTag::NONE));
        l2.access(BlockAddr(4), AccessKind::Read, meta(PbTag::NONE));
        let out = l2.access(BlockAddr(5), AccessKind::Read, meta(PbTag::NONE));
        // Pure LRU: block 1, not the dead PB block 2.
        assert_eq!(out.evicted.unwrap().addr, BlockAddr(1));
    }
}
