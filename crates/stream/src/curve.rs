//! Miss-curve rendering shared by the streaming sessions and the
//! offline `misscurves` engine.
//!
//! The CI byte-identity guarantee ("a finished stream session renders
//! the same bytes as `GET /v1/misscurve/{workload}/{policy}`") holds
//! because both planes call [`misscurve_json`] *here* with the same
//! capacity grid ([`default_grid`]) and the same ratio expression
//! (`misses as f64 / total as f64`).

use tcor_runner::Json;
use tcor_workloads::prims_capacity;

/// Capacity grids larger than this are rejected at session open — a
/// hostile `grid` parameter must not turn every snapshot into a
/// thousand-point scan.
pub const MAX_GRID_POINTS: usize = 512;

/// A capacity grid: tile-cache sizes in KB paired with the
/// primitive-entry capacities the profilers are queried at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CapacityGrid {
    /// Cache sizes in KB (the published x-axis).
    pub size_kb: Vec<usize>,
    /// Fully-associative capacities in primitive entries, one per size.
    pub caps: Vec<usize>,
}

impl CapacityGrid {
    /// The grid for an inclusive KB range with a step.
    pub fn from_range(from_kb: usize, to_kb: usize, step_kb: usize) -> Self {
        let size_kb: Vec<usize> = (from_kb..=to_kb).step_by(step_kb).collect();
        let caps = size_kb
            .iter()
            .map(|kb| prims_capacity(*kb as u64 * 1024))
            .collect();
        CapacityGrid { size_kb, caps }
    }
}

/// The Fig.-1 serving grid: 8–152 KB in 8 KB steps — identical to the
/// offline `workload_curve` grid, so streamed and offline curves are
/// comparable (and, for the same trace, byte-identical).
pub fn default_grid() -> CapacityGrid {
    CapacityGrid::from_range(8, 152, 8)
}

/// Encodes one miss curve as parallel `size_kb` / `miss_ratio` arrays.
/// This is the single wire encoding for miss curves; the offline plane
/// (`tcor-sim`) re-exports it.
pub fn misscurve_json(workload: &str, policy: &str, sizes: &[usize], curve: &[f64]) -> Json {
    Json::obj([
        ("workload", Json::str(workload)),
        ("policy", Json::str(policy)),
        (
            "size_kb",
            Json::Arr(sizes.iter().map(|&s| Json::UInt(s as u64)).collect()),
        ),
        (
            "miss_ratio",
            Json::Arr(curve.iter().map(|&m| Json::Float(m)).collect()),
        ),
    ])
}

/// The offline engines' ratio expression, guarded for the one case
/// they never see: an empty (zero-access) session profiles to 0.0.
pub fn miss_ratio(misses: u64, total: u64) -> f64 {
    if total == 0 {
        0.0
    } else {
        misses as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn misscurve_json_pins_the_wire_bytes() {
        let doc = misscurve_json("GTr", "lru", &[8, 16], &[0.5, 0.25]);
        assert_eq!(
            doc.render(),
            "{\"workload\":\"GTr\",\"policy\":\"lru\",\"size_kb\":[8,16],\
             \"miss_ratio\":[0.5,0.25]}"
        );
    }

    #[test]
    fn default_grid_matches_fig1() {
        let g = default_grid();
        assert_eq!(g.size_kb.first(), Some(&8));
        assert_eq!(g.size_kb.last(), Some(&152));
        assert_eq!(g.size_kb.len(), 19);
        assert_eq!(g.caps.len(), g.size_kb.len());
        assert_eq!(g.caps[0], prims_capacity(8 * 1024));
    }

    #[test]
    fn miss_ratio_guards_empty() {
        assert_eq!(miss_ratio(0, 0), 0.0);
        assert_eq!(miss_ratio(1, 2), 0.5);
    }
}
