//! Streaming profile sessions: bounded, TTL'd, fault-isolated.
//!
//! A [`SessionRegistry`] owns every live session behind one mutex.
//! Each session pairs a [`ChunkDecoder`] (transactional incremental
//! parse) with a [`StreamingProfiler`] (exact online OPT + LRU), plus
//! the byte/block budgets that keep a hostile or runaway upload from
//! exhausting the daemon:
//!
//! * **byte budget** — checked *before* decoding; a breach is a 413
//!   and the session stays intact (the client may finish with what it
//!   sent).
//! * **block budget** — checked after ingest; a breach evicts the
//!   session (its profiler is the thing that grew) and answers 429.
//! * **TTL** — every operation sweeps sessions idle past the TTL, so
//!   abandoned uploads cannot pin memory.
//!
//! Malformed chunks are rejected atomically with typed errors
//! ([`StreamError::Decode`]); the registry's other sessions and even
//! the offending session's already-ingested prefix are untouched.
//!
//! All clocks are passed in (`now: Instant`) so the registry itself is
//! deterministic and directly testable.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

use tcor_cache::profile::StreamingProfiler;
use tcor_common::TcorError;
use tcor_runner::Json;
use tcor_workloads::ChunkDecoder;

use crate::curve::{default_grid, miss_ratio, misscurve_json, CapacityGrid, MAX_GRID_POINTS};

/// Budgets and limits for the streaming plane.
#[derive(Clone, Copy, Debug)]
pub struct StreamConfig {
    /// Concurrent session cap; opens beyond it answer 429.
    pub max_sessions: usize,
    /// Per-session ingest byte budget; chunks beyond it answer 413.
    pub session_bytes: u64,
    /// Per-session distinct-block budget; breaching it evicts the
    /// session with a 429.
    pub session_blocks: usize,
    /// Idle time after which a session is swept.
    pub ttl: Duration,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            max_sessions: 64,
            session_bytes: 8 * 1024 * 1024,
            session_blocks: 1 << 20,
            ttl: Duration::from_secs(300),
        }
    }
}

/// Typed streaming-plane failure; [`status`](Self::status) maps each
/// class to its HTTP status so the serve layer never improvises.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StreamError {
    /// No such (or expired) session — 404.
    UnknownSession(String),
    /// The registry is at `max_sessions` — 429.
    SessionsFull { limit: usize },
    /// Chunk would exceed the session byte budget — 413, session kept.
    ByteBudget { used: u64, limit: u64 },
    /// Distinct blocks exceeded the budget — 429, session evicted.
    BlockBudget { blocks: usize, limit: usize },
    /// Chunk sent after finish — 409.
    Finished(String),
    /// Malformed chunk (typed decoder error) — 400, session kept.
    Decode(String),
    /// Malformed open/query parameters — 400.
    BadRequest(String),
}

impl StreamError {
    /// The HTTP status this failure maps to (never a 5xx: every
    /// streaming failure is a client-attributable condition).
    pub fn status(&self) -> u16 {
        match self {
            StreamError::UnknownSession(_) => 404,
            StreamError::SessionsFull { .. } => 429,
            StreamError::ByteBudget { .. } => 413,
            StreamError::BlockBudget { .. } => 429,
            StreamError::Finished(_) => 409,
            StreamError::Decode(_) | StreamError::BadRequest(_) => 400,
        }
    }
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::UnknownSession(id) => write!(f, "unknown stream session `{id}`"),
            StreamError::SessionsFull { limit } => {
                write!(f, "stream sessions full ({limit} open)")
            }
            StreamError::ByteBudget { used, limit } => {
                write!(f, "session byte budget exceeded ({used} of {limit} bytes)")
            }
            StreamError::BlockBudget { blocks, limit } => write!(
                f,
                "session block budget exceeded ({blocks} of {limit} blocks); session evicted"
            ),
            StreamError::Finished(id) => {
                write!(f, "stream session `{id}` is finished; no further chunks")
            }
            StreamError::Decode(msg) | StreamError::BadRequest(msg) => f.write_str(msg),
        }
    }
}

impl From<TcorError> for StreamError {
    fn from(e: TcorError) -> Self {
        StreamError::Decode(e.to_string())
    }
}

/// Ingest receipt for one accepted chunk, with the counters the serve
/// metrics want.
#[derive(Clone, Debug)]
pub struct ChunkReceipt {
    /// JSON receipt body (newline-terminated).
    pub body: String,
    /// Accesses decoded from this chunk.
    pub accesses: u64,
    /// Bytes ingested from this chunk.
    pub bytes: u64,
}

/// One live streaming session.
struct Session {
    label: String,
    grid: CapacityGrid,
    decoder: ChunkDecoder,
    profiler: StreamingProfiler,
    bytes_in: u64,
    last_touch: Instant,
}

struct Inner {
    sessions: HashMap<String, Session>,
    counter: u64,
    expired: u64,
}

/// The streaming plane's session table. Thread-safe; every public
/// operation takes the caller's clock, sweeps expired sessions, then
/// acts.
pub struct SessionRegistry {
    config: StreamConfig,
    inner: Mutex<Inner>,
}

impl SessionRegistry {
    /// An empty registry with the given budgets.
    pub fn new(config: StreamConfig) -> Self {
        SessionRegistry {
            config,
            inner: Mutex::new(Inner {
                sessions: HashMap::new(),
                counter: 0,
                expired: 0,
            }),
        }
    }

    /// The configured budgets.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// Opens a session. Body parameters (`k=v`, `&`- or
    /// newline-separated): `label` (workload name echoed into curve
    /// documents, `[A-Za-z0-9_-]{1,64}`, default `trace`) and `grid`
    /// (`from:to:step` in KB, default the Fig.-1 serving grid).
    /// Returns the JSON receipt carrying the session id.
    pub fn open(&self, body: &str, now: Instant) -> Result<String, StreamError> {
        let (label, grid) = parse_open_params(body)?;
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        sweep(&mut inner, now, self.config.ttl);
        if inner.sessions.len() >= self.config.max_sessions {
            return Err(StreamError::SessionsFull {
                limit: self.config.max_sessions,
            });
        }
        let id = format!("s{:08x}", inner.counter);
        inner.counter += 1;
        let doc = Json::obj([
            ("session", Json::str(&id)),
            ("workload", Json::str(&label)),
            ("grid_points", Json::UInt(grid.size_kb.len() as u64)),
            ("byte_budget", Json::UInt(self.config.session_bytes)),
            (
                "block_budget",
                Json::UInt(self.config.session_blocks as u64),
            ),
        ]);
        inner.sessions.insert(
            id,
            Session {
                label,
                grid,
                decoder: ChunkDecoder::new(),
                profiler: StreamingProfiler::new(),
                bytes_in: 0,
                last_touch: now,
            },
        );
        Ok(doc.render() + "\n")
    }

    /// Ingests one chunk into a session. Budget order: bytes before
    /// decode (413 leaves the session intact), decode transactional
    /// (400 leaves it intact), blocks after ingest (429 evicts it).
    pub fn chunk(&self, id: &str, body: &str, now: Instant) -> Result<ChunkReceipt, StreamError> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        sweep(&mut inner, now, self.config.ttl);
        let session = inner
            .sessions
            .get_mut(id)
            .ok_or_else(|| StreamError::UnknownSession(id.to_string()))?;
        session.last_touch = now;
        if session.profiler.is_finalized() {
            return Err(StreamError::Finished(id.to_string()));
        }
        let incoming = body.len() as u64;
        if session.bytes_in + incoming > self.config.session_bytes {
            return Err(StreamError::ByteBudget {
                used: session.bytes_in + incoming,
                limit: self.config.session_bytes,
            });
        }
        let accesses = session.decoder.feed(body)?;
        session.bytes_in += incoming;
        for a in &accesses {
            session.profiler.push(*a);
        }
        let blocks = session.profiler.distinct_blocks();
        if blocks > self.config.session_blocks {
            let limit = self.config.session_blocks;
            inner.sessions.remove(id);
            return Err(StreamError::BlockBudget { blocks, limit });
        }
        let doc = Json::obj([
            ("session", Json::str(id)),
            ("accesses", Json::UInt(session.profiler.total_accesses())),
            ("distinct_blocks", Json::UInt(blocks as u64)),
            ("window", Json::UInt(session.profiler.window_len() as u64)),
        ]);
        Ok(ChunkReceipt {
            body: doc.render() + "\n",
            accesses: accesses.len() as u64,
            bytes: incoming,
        })
    }

    /// Renders the exact miss curves for the prefix ingested so far
    /// (or the whole stream, once finished). `policy` of `opt` / `lru`
    /// yields the single-curve document byte-compatible with the
    /// offline `/v1/misscurve` plane; `None` yields the combined
    /// session document with both curves and ingest statistics.
    pub fn curve(
        &self,
        id: &str,
        policy: Option<&str>,
        now: Instant,
    ) -> Result<String, StreamError> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        sweep(&mut inner, now, self.config.ttl);
        let session = inner
            .sessions
            .get_mut(id)
            .ok_or_else(|| StreamError::UnknownSession(id.to_string()))?;
        session.last_touch = now;
        render_curves(id, session, policy)
    }

    /// Finalizes the session — every still-pending access resolves to
    /// `next_use = ∞` — and renders the final curves. Idempotent; the
    /// session stays queryable (curve/finish) until its TTL. Decoder
    /// carry with a final unterminated line is flushed first.
    pub fn finish(
        &self,
        id: &str,
        policy: Option<&str>,
        now: Instant,
    ) -> Result<String, StreamError> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        sweep(&mut inner, now, self.config.ttl);
        let session = inner
            .sessions
            .get_mut(id)
            .ok_or_else(|| StreamError::UnknownSession(id.to_string()))?;
        session.last_touch = now;
        if !session.profiler.is_finalized() {
            let tail = session.decoder.finish()?;
            for a in &tail {
                session.profiler.push(*a);
            }
            session.profiler.finalize();
        }
        render_curves(id, session, policy)
    }

    /// Removes a session unconditionally — the serve layer's panic
    /// containment: if an operation on a session panics mid-update,
    /// the session's state can no longer be trusted and is dropped so
    /// it cannot poison later requests. Returns whether it existed.
    pub fn evict(&self, id: &str) -> bool {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .sessions
            .remove(id)
            .is_some()
    }

    /// Live session count (after no sweep — callers wanting freshness
    /// should have just performed an operation).
    pub fn open_sessions(&self) -> u64 {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .sessions
            .len() as u64
    }

    /// Total sessions expired by TTL sweeps since construction.
    pub fn expired_total(&self) -> u64 {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .expired
    }
}

/// Drops sessions idle past the TTL.
fn sweep(inner: &mut Inner, now: Instant, ttl: Duration) {
    let before = inner.sessions.len();
    inner
        .sessions
        .retain(|_, s| now.saturating_duration_since(s.last_touch) <= ttl);
    inner.expired += (before - inner.sessions.len()) as u64;
}

/// Renders the curve document(s) for one session.
fn render_curves(id: &str, session: &Session, policy: Option<&str>) -> Result<String, StreamError> {
    let profiler = &session.profiler;
    let opt = profiler.snapshot_opt();
    let total = profiler.total_accesses();
    let curve_of = |misses_at: &dyn Fn(usize) -> u64| -> Vec<f64> {
        session
            .grid
            .caps
            .iter()
            .map(|&c| miss_ratio(misses_at(c), total))
            .collect()
    };
    let opt_curve = curve_of(&|c| opt.misses_at(c));
    let lru_curve = curve_of(&|c| profiler.lru().misses_at(c));
    match policy {
        Some("opt") => Ok(
            misscurve_json(&session.label, "opt", &session.grid.size_kb, &opt_curve).render()
                + "\n",
        ),
        Some("lru") => Ok(
            misscurve_json(&session.label, "lru", &session.grid.size_kb, &lru_curve).render()
                + "\n",
        ),
        Some(other) => Err(StreamError::BadRequest(format!(
            "unknown curve policy `{other}` (expected opt or lru)"
        ))),
        None => {
            let doc = Json::obj([
                ("session", Json::str(id)),
                ("workload", Json::str(&session.label)),
                ("finished", Json::Bool(profiler.is_finalized())),
                ("accesses", Json::UInt(total)),
                (
                    "distinct_blocks",
                    Json::UInt(profiler.distinct_blocks() as u64),
                ),
                ("window", Json::UInt(profiler.window_len() as u64)),
                ("peak_window", Json::UInt(profiler.peak_window() as u64)),
                (
                    "size_kb",
                    Json::Arr(
                        session
                            .grid
                            .size_kb
                            .iter()
                            .map(|&s| Json::UInt(s as u64))
                            .collect(),
                    ),
                ),
                (
                    "opt_miss_ratio",
                    Json::Arr(opt_curve.into_iter().map(Json::Float).collect()),
                ),
                (
                    "lru_miss_ratio",
                    Json::Arr(lru_curve.into_iter().map(Json::Float).collect()),
                ),
            ]);
            Ok(doc.render() + "\n")
        }
    }
}

/// Parses the open body: `label` and `grid` keys, everything else
/// rejected (typos should fail loudly, not silently profile under the
/// default grid).
fn parse_open_params(body: &str) -> Result<(String, CapacityGrid), StreamError> {
    let mut label = String::from("trace");
    let mut grid = default_grid();
    for pair in body
        .split(['&', '\n'])
        .map(str::trim)
        .filter(|s| !s.is_empty())
    {
        let Some((key, value)) = pair.split_once('=') else {
            return Err(StreamError::BadRequest(format!(
                "malformed parameter `{pair}` (expected key=value)"
            )));
        };
        match key {
            "label" => {
                let ok = !value.is_empty()
                    && value.len() <= 64
                    && value
                        .chars()
                        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-');
                if !ok {
                    return Err(StreamError::BadRequest(format!(
                        "bad label `{value}` (want [A-Za-z0-9_-], at most 64 chars)"
                    )));
                }
                label = value.to_string();
            }
            "grid" => grid = parse_grid(value)?,
            _ => {
                return Err(StreamError::BadRequest(format!(
                    "unknown parameter `{key}` (expected label or grid)"
                )));
            }
        }
    }
    Ok((label, grid))
}

/// Parses `from:to:step` (KB, inclusive range) into a capacity grid.
fn parse_grid(spec: &str) -> Result<CapacityGrid, StreamError> {
    let bad = |why: &str| StreamError::BadRequest(format!("bad grid `{spec}`: {why}"));
    let parts: Vec<&str> = spec.split(':').collect();
    let [from, to, step] = parts.as_slice() else {
        return Err(bad("expected from:to:step in KB"));
    };
    let parse = |s: &str| s.parse::<usize>().map_err(|_| bad("not a number"));
    let (from, to, step) = (parse(from)?, parse(to)?, parse(step)?);
    if from == 0 || step == 0 || to < from {
        return Err(bad("want 1 <= from <= to and step >= 1"));
    }
    let points = (to - from) / step + 1;
    if points > MAX_GRID_POINTS {
        return Err(bad("too many grid points"));
    }
    Ok(CapacityGrid::from_range(from, to, step))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcor_cache::profile::OptStackProfiler;
    use tcor_cache::{annotate_next_use, Access};
    use tcor_common::BlockAddr;
    use tcor_workloads::encode_chunk;

    fn t0() -> Instant {
        Instant::now()
    }

    fn reads(seq: &[u64]) -> Vec<Access> {
        seq.iter().map(|&b| Access::read(BlockAddr(b))).collect()
    }

    fn session_id(receipt: &str) -> String {
        let doc = Json::parse(receipt).unwrap();
        match &doc {
            Json::Obj(fields) => fields
                .iter()
                .find(|(k, _)| k == "session")
                .and_then(|(_, v)| match v {
                    Json::Str(s) => Some(s.clone()),
                    _ => None,
                })
                .unwrap(),
            _ => panic!("receipt not an object"),
        }
    }

    #[test]
    fn open_chunk_finish_matches_offline_render() {
        let reg = SessionRegistry::new(StreamConfig::default());
        let now = t0();
        let id = session_id(&reg.open("label=GTr", now).unwrap());
        let trace = reads(&[1, 2, 3, 1, 2, 9, 9, 1]);
        // Two chunks, split mid-trace.
        let enc = encode_chunk(&trace);
        let (a, b) = enc.split_at(enc.len() / 2);
        reg.chunk(&id, a, now).unwrap();
        reg.chunk(&id, b, now).unwrap();
        let got = reg.finish(&id, Some("opt"), now).unwrap();

        let opt = OptStackProfiler::profile(&trace, &annotate_next_use(&trace));
        let grid = default_grid();
        let curve: Vec<f64> = grid
            .caps
            .iter()
            .map(|&c| opt.misses_at(c) as f64 / trace.len() as f64)
            .collect();
        let want = misscurve_json("GTr", "opt", &grid.size_kb, &curve).render() + "\n";
        assert_eq!(got, want);
    }

    #[test]
    fn snapshot_mid_stream_is_exact_for_prefix() {
        let reg = SessionRegistry::new(StreamConfig::default());
        let now = t0();
        let id = session_id(&reg.open("label=GTr&grid=1:4:1", now).unwrap());
        let trace = reads(&[5, 6, 5, 7, 8, 5]);
        reg.chunk(&id, &encode_chunk(&trace), now).unwrap();
        let got = reg.curve(&id, Some("lru"), now).unwrap();
        // LRU over the prefix == whole-trace LRU (it is online).
        assert!(got.contains("\"policy\":\"lru\""));
        let combined = reg.curve(&id, None, now).unwrap();
        assert!(combined.contains("\"finished\":false"));
        assert!(combined.contains("\"accesses\":6"));
    }

    #[test]
    fn byte_budget_rejects_and_keeps_session() {
        let config = StreamConfig {
            session_bytes: 8,
            ..StreamConfig::default()
        };
        let reg = SessionRegistry::new(config);
        let now = t0();
        let id = session_id(&reg.open("", now).unwrap());
        let err = reg.chunk(&id, "R1\nR2\nR3\n", now).unwrap_err();
        assert_eq!(err.status(), 413);
        // Session intact: a within-budget chunk still lands.
        reg.chunk(&id, "R1\nR2\n", now).unwrap();
    }

    #[test]
    fn block_budget_evicts_session() {
        let config = StreamConfig {
            session_blocks: 2,
            ..StreamConfig::default()
        };
        let reg = SessionRegistry::new(config);
        let now = t0();
        let id = session_id(&reg.open("", now).unwrap());
        let err = reg.chunk(&id, "R1\nR2\nR3\n", now).unwrap_err();
        assert_eq!(err.status(), 429);
        assert!(matches!(err, StreamError::BlockBudget { .. }));
        let err = reg.chunk(&id, "R1\n", now).unwrap_err();
        assert_eq!(err.status(), 404, "session was evicted");
    }

    #[test]
    fn decode_error_keeps_session_intact() {
        let reg = SessionRegistry::new(StreamConfig::default());
        let now = t0();
        let id = session_id(&reg.open("", now).unwrap());
        reg.chunk(&id, "R1\n", now).unwrap();
        let err = reg.chunk(&id, "garbage!\n", now).unwrap_err();
        assert_eq!(err.status(), 400);
        let receipt = reg.chunk(&id, "R2\n", now).unwrap();
        assert!(receipt.body.contains("\"accesses\":2"));
    }

    #[test]
    fn chunk_after_finish_conflicts() {
        let reg = SessionRegistry::new(StreamConfig::default());
        let now = t0();
        let id = session_id(&reg.open("", now).unwrap());
        reg.chunk(&id, "R1\n", now).unwrap();
        reg.finish(&id, None, now).unwrap();
        let err = reg.chunk(&id, "R2\n", now).unwrap_err();
        assert_eq!(err.status(), 409);
        // But the finished session is still queryable, and finish is
        // idempotent.
        reg.curve(&id, Some("opt"), now).unwrap();
        reg.finish(&id, Some("opt"), now).unwrap();
    }

    #[test]
    fn sessions_full_and_ttl_sweep() {
        let config = StreamConfig {
            max_sessions: 2,
            ttl: Duration::from_secs(10),
            ..StreamConfig::default()
        };
        let reg = SessionRegistry::new(config);
        let now = t0();
        reg.open("", now).unwrap();
        reg.open("", now).unwrap();
        let err = reg.open("", now).unwrap_err();
        assert_eq!(err.status(), 429);
        assert!(matches!(err, StreamError::SessionsFull { .. }));
        // Past the TTL both sessions expire and opens succeed again.
        let later = now + Duration::from_secs(11);
        reg.open("", later).unwrap();
        assert_eq!(reg.expired_total(), 2);
        assert_eq!(reg.open_sessions(), 1);
    }

    #[test]
    fn open_params_validated() {
        let reg = SessionRegistry::new(StreamConfig::default());
        let now = t0();
        for bad in [
            "label=",
            "label=no spaces",
            "grid=8:152",
            "grid=0:8:1",
            "grid=8:4:1",
            "grid=1:100000:1",
            "bogus=1",
            "notapair",
        ] {
            let err = reg.open(bad, now).unwrap_err();
            assert_eq!(err.status(), 400, "{bad:?}");
        }
        reg.open("label=GTr&grid=8:152:8", now).unwrap();
    }

    #[test]
    fn unknown_policy_is_bad_request() {
        let reg = SessionRegistry::new(StreamConfig::default());
        let now = t0();
        let id = session_id(&reg.open("", now).unwrap());
        let err = reg.curve(&id, Some("fifo"), now).unwrap_err();
        assert_eq!(err.status(), 400);
    }

    #[test]
    fn finish_flushes_unterminated_carry() {
        let reg = SessionRegistry::new(StreamConfig::default());
        let now = t0();
        let id = session_id(&reg.open("", now).unwrap());
        reg.chunk(&id, "R1\nR2", now).unwrap();
        let doc = reg.finish(&id, None, now).unwrap();
        assert!(doc.contains("\"accesses\":2"), "{doc}");
    }
}
