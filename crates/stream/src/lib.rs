//! # tcor-stream
//!
//! Session-based streaming trace ingestion + online miss-curve
//! profiling: the subsystem that turns the daemon's ten canned
//! benchmarks into "profile *any* access stream, live".
//!
//! A client opens a [`SessionRegistry`] session, uploads trace chunks
//! in the compact [`tcor_workloads::chunk`] line format, polls exact
//! OPT/LRU miss curves for the prefix ingested so far, and finalizes
//! for the whole stream. Exactness comes from
//! [`tcor_cache::profile::StreamingProfiler`]'s forward next-use
//! resolution; boundedness from its run-compaction plus this crate's
//! per-session byte/block budgets and TTL sweeps (see [`session`]).
//!
//! The crate is HTTP-free: `tcor-serve` maps sessions onto routes, and
//! `tcor-sim` reuses [`misscurve_json`] so streamed and offline curves
//! are byte-identical for identical traces.
//!
//! ```
//! use std::time::Instant;
//! use tcor_stream::{SessionRegistry, StreamConfig};
//!
//! let reg = SessionRegistry::new(StreamConfig::default());
//! let now = Instant::now();
//! let receipt = reg.open("label=GTr", now).unwrap();
//! assert!(receipt.contains("\"session\":\"s00000000\""));
//! ```

pub mod curve;
pub mod session;

pub use curve::{default_grid, miss_ratio, misscurve_json, CapacityGrid, MAX_GRID_POINTS};
pub use session::{ChunkReceipt, SessionRegistry, StreamConfig, StreamError};
