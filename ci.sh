#!/usr/bin/env bash
# Tier-1 gate. Fully offline: no registry access, no network.
#
#   ./ci.sh            format + lint + build + test + golden check
#
# The golden check regenerates the abstract's headline numbers through
# the parallel runner and compares them bit-for-bit against
# results/golden/ (see README "Parallel runs, telemetry and golden
# results"). Re-record intentional changes with
#   cargo run --release -p tcor-sim -- all --update-golden
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --workspace --release

echo "== cargo test"
cargo test --workspace -q

echo "== golden check (headline)"
cargo run --release -q -p tcor-sim -- headline --check --telemetry /tmp/tcor-ci-telemetry.jsonl >/dev/null

echo "== golden check (miss curves, single-pass engine)"
# The single-pass miss-curve engine (OPT stack profiling + banked
# policy simulation, see DESIGN.md) must reproduce every miss-curve
# figure bit-for-bit against the goldens recorded under the
# per-capacity replay engine. Drift exits 4.
cargo run --release -q -p tcor-sim -- fig1 fig11 fig12 fig13 fig13x --check \
  --telemetry /tmp/tcor-ci-telemetry.jsonl >/dev/null

echo "== miss-curve engine regression gate"
# Benchmarks the single-pass engine against the per-capacity replay on
# every miss-curve experiment and fails if any speedup drops below
# 1.00x or outputs drift (this is the gate that would have caught the
# fig13x 0.94x banked-engine regression). Writes the per-experiment
# table to a scratch path; the committed BENCH_misscurves.json is
# refreshed intentionally via `bench-misscurves` without --gate.
cargo run --release -q -p tcor-sim -- bench-misscurves \
  /tmp/tcor-ci-bench-misscurves.json --gate >/dev/null

echo "== metric-conservation audit (clean, then injected counter fault)"
# The audit re-derives every headline counter from two independent
# counting sites over all 60 suite cells (see crates/obs). A clean tree
# must balance exactly; a deliberately tampered counter copy must be
# caught and mapped to the corruption exit code (5).
cargo run --release -q -p tcor-sim -- headline --audit \
  --telemetry /tmp/tcor-ci-telemetry.jsonl >/dev/null
set +e
cargo run --release -q -p tcor-sim -- --audit --inject-audit-fault \
  >/dev/null 2>&1
code=$?
set -e
if [ "$code" -ne 5 ]; then
  echo "ci: FAIL: injected audit fault exited $code, expected 5 (corruption)" >&2
  exit 1
fi

echo "== fault-injection smoke (inject, then resume + golden check)"
# Seed 42 deterministically panics one scene job: the run must contain
# the failure (exit 3, the cell-failure code) while independent
# experiments complete, and the clean resumed run must re-execute only
# the missing experiments and still match the goldens bit-for-bit.
SMOKE_MANIFEST=/tmp/tcor-ci-manifest.txt
rm -f "$SMOKE_MANIFEST"
set +e
cargo run --release -q -p tcor-sim -- all --inject-faults 42 \
  --manifest "$SMOKE_MANIFEST" --telemetry /tmp/tcor-ci-telemetry.jsonl \
  >/dev/null 2>&1
code=$?
set -e
if [ "$code" -ne 3 ]; then
  echo "ci: FAIL: injected-fault run exited $code, expected 3 (cell failure)" >&2
  exit 1
fi
cargo run --release -q -p tcor-sim -- all --resume --check \
  --manifest "$SMOKE_MANIFEST" --telemetry /tmp/tcor-ci-telemetry.jsonl \
  >/dev/null
rm -f "$SMOKE_MANIFEST"

echo "== serve smoke (daemon up, golden table over loopback, graceful exit)"
# The serving daemon must come up on an ephemeral port, answer a golden
# experiment over loopback byte-identically to results/golden/, and
# drain to exit 0 on POST /admin/shutdown.
TCOR_SIM=target/release/tcor-sim
PORT_FILE=/tmp/tcor-ci-serve-port
SERVE_OUT=/tmp/tcor-ci-serve-fig10.csv
rm -f "$PORT_FILE"
"$TCOR_SIM" serve --port 0 --workers 2 --queue-depth 16 --port-file "$PORT_FILE" \
  --telemetry /tmp/tcor-ci-serve-telemetry.jsonl >/dev/null 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do
  [ -s "$PORT_FILE" ] && break
  sleep 0.1
done
if [ ! -s "$PORT_FILE" ]; then
  echo "ci: FAIL: serve daemon never published its port" >&2
  kill "$SERVE_PID" 2>/dev/null || true
  exit 1
fi
ADDR=$(cat "$PORT_FILE")
"$TCOR_SIM" serve-req "$ADDR" GET /health >/dev/null
"$TCOR_SIM" serve-req "$ADDR" GET /v1/table/fig10 > "$SERVE_OUT"
if ! cmp -s "$SERVE_OUT" results/golden/fig10.csv; then
  echo "ci: FAIL: served fig10 differs from results/golden/fig10.csv" >&2
  kill "$SERVE_PID" 2>/dev/null || true
  exit 1
fi
"$TCOR_SIM" serve-req "$ADDR" POST /admin/shutdown >/dev/null
set +e
wait "$SERVE_PID"
code=$?
set -e
if [ "$code" -ne 0 ]; then
  echo "ci: FAIL: serve daemon exited $code after graceful shutdown, expected 0" >&2
  exit 1
fi
rm -f "$PORT_FILE" "$SERVE_OUT"

echo "== stream smoke (chunked upload byte-identical to offline misscurves + 413 cap)"
# The streaming profile plane must answer a chunked GTr upload with
# finish curves byte-identical to the offline /v1/misscurve plane for
# both policies (streamed ≡ whole-trace, proved with cmp), refuse an
# over-limit chunk body with 413 from the head alone, and count the
# rejection in serve/body_rejected.
STREAM_OUT=/tmp/tcor-ci-stream-gtr.json
OFFLINE_OUT=/tmp/tcor-ci-offline-gtr.json
rm -f "$PORT_FILE"
"$TCOR_SIM" serve --port 0 --workers 2 --queue-depth 16 --port-file "$PORT_FILE" \
  >/dev/null 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do
  [ -s "$PORT_FILE" ] && break
  sleep 0.1
done
if [ ! -s "$PORT_FILE" ]; then
  echo "ci: FAIL: stream-smoke daemon never published its port" >&2
  kill "$SERVE_PID" 2>/dev/null || true
  exit 1
fi
ADDR=$(cat "$PORT_FILE")
for policy in opt lru; do
  if ! "$TCOR_SIM" stream "$ADDR" --workload GTr --policy "$policy" \
      --chunk-accesses 1000 > "$STREAM_OUT" 2>/dev/null; then
    echo "ci: FAIL: chunked stream upload (policy $policy) failed" >&2
    kill "$SERVE_PID" 2>/dev/null || true
    exit 1
  fi
  "$TCOR_SIM" serve-req "$ADDR" GET "/v1/misscurve/GTr/$policy" > "$OFFLINE_OUT"
  if ! cmp -s "$STREAM_OUT" "$OFFLINE_OUT"; then
    echo "ci: FAIL: streamed GTr/$policy curve differs from the offline misscurve bytes" >&2
    kill "$SERVE_PID" 2>/dev/null || true
    exit 1
  fi
done
if ! "$TCOR_SIM" stream "$ADDR" --probe-oversize 2>/dev/null; then
  echo "ci: FAIL: oversize chunk body was not refused with 413" >&2
  kill "$SERVE_PID" 2>/dev/null || true
  exit 1
fi
if ! "$TCOR_SIM" serve-req "$ADDR" GET /metrics | grep -q 'serve/body_rejected = 1'; then
  echo "ci: FAIL: the 413 rejection did not land in serve/body_rejected" >&2
  kill "$SERVE_PID" 2>/dev/null || true
  exit 1
fi
"$TCOR_SIM" serve-req "$ADDR" POST /admin/shutdown >/dev/null
set +e
wait "$SERVE_PID"
code=$?
set -e
if [ "$code" -ne 0 ]; then
  echo "ci: FAIL: stream-smoke daemon exited $code after graceful shutdown, expected 0" >&2
  exit 1
fi
rm -f "$PORT_FILE" "$STREAM_OUT" "$OFFLINE_OUT"

echo "== bench-stream smoke (streaming ingest + live snapshots, offline byte parity)"
# The in-process streaming benchmark asserts the finished curve is
# byte-identical to a whole-trace profiler run of the same synthetic
# trace, takes live snapshots mid-ingest, and records the profiler's
# window high-water against the session budgets.
BENCH_STREAM_OUT=/tmp/tcor-ci-bench-stream.json
rm -f "$BENCH_STREAM_OUT"
"$TCOR_SIM" bench-stream "$BENCH_STREAM_OUT" --smoke 2>/dev/null
for want in '"byte_identical_vs_offline":true' '"smoke":true'; do
  if ! grep -q "$want" "$BENCH_STREAM_OUT"; then
    echo "ci: FAIL: bench-stream record is missing $want" >&2
    exit 1
  fi
done
if grep -q '"snapshots":0' "$BENCH_STREAM_OUT"; then
  echo "ci: FAIL: bench-stream took no live snapshots" >&2
  exit 1
fi
rm -f "$BENCH_STREAM_OUT"

echo "== restart-warm smoke (persistent cache survives a daemon restart)"
# Two daemon generations over one --cache-dir. Generation 1 computes a
# golden table into the persistent cache and dies; generation 2 must
# answer the same request from the DISK tier (X-Tcor-Cache: disk,
# asserted by serve-req --expect-cache) byte-identically to both
# generation 1's body and results/golden/ — a result computed before a
# crash is never recomputed, and never silently different, after it.
CACHE_DIR=/tmp/tcor-ci-pcache
RESTART_OUT=/tmp/tcor-ci-restart-fig10.csv
rm -rf "$CACHE_DIR"
rm -f "$PORT_FILE"
"$TCOR_SIM" serve --port 0 --workers 2 --queue-depth 16 --port-file "$PORT_FILE" \
  --cache-dir "$CACHE_DIR" \
  --telemetry /tmp/tcor-ci-serve-telemetry.jsonl >/dev/null 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do
  [ -s "$PORT_FILE" ] && break
  sleep 0.1
done
if [ ! -s "$PORT_FILE" ]; then
  echo "ci: FAIL: generation-1 daemon never published its port" >&2
  kill "$SERVE_PID" 2>/dev/null || true
  exit 1
fi
ADDR=$(cat "$PORT_FILE")
"$TCOR_SIM" serve-req "$ADDR" GET /v1/table/fig10 --expect-cache miss > "$SERVE_OUT"
"$TCOR_SIM" serve-req "$ADDR" POST /admin/shutdown >/dev/null
set +e
wait "$SERVE_PID"
code=$?
set -e
if [ "$code" -ne 0 ]; then
  echo "ci: FAIL: generation-1 daemon exited $code, expected 0" >&2
  exit 1
fi
rm -f "$PORT_FILE"
"$TCOR_SIM" serve --port 0 --workers 2 --queue-depth 16 --port-file "$PORT_FILE" \
  --cache-dir "$CACHE_DIR" \
  --telemetry /tmp/tcor-ci-serve-telemetry.jsonl >/dev/null 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do
  [ -s "$PORT_FILE" ] && break
  sleep 0.1
done
if [ ! -s "$PORT_FILE" ]; then
  echo "ci: FAIL: restarted daemon never published its port" >&2
  kill "$SERVE_PID" 2>/dev/null || true
  exit 1
fi
ADDR=$(cat "$PORT_FILE")
if ! "$TCOR_SIM" serve-req "$ADDR" GET /v1/table/fig10 --expect-cache disk > "$RESTART_OUT"; then
  echo "ci: FAIL: restarted daemon did not answer fig10 from the disk tier" >&2
  kill "$SERVE_PID" 2>/dev/null || true
  exit 1
fi
if ! cmp -s "$RESTART_OUT" results/golden/fig10.csv; then
  echo "ci: FAIL: disk-tier fig10 differs from results/golden/fig10.csv" >&2
  kill "$SERVE_PID" 2>/dev/null || true
  exit 1
fi
if ! cmp -s "$RESTART_OUT" "$SERVE_OUT"; then
  echo "ci: FAIL: disk-tier fig10 differs from generation 1's body" >&2
  kill "$SERVE_PID" 2>/dev/null || true
  exit 1
fi
"$TCOR_SIM" serve-req "$ADDR" POST /admin/shutdown >/dev/null
set +e
wait "$SERVE_PID"
code=$?
set -e
if [ "$code" -ne 0 ]; then
  echo "ci: FAIL: restarted daemon exited $code after graceful shutdown, expected 0" >&2
  exit 1
fi
rm -rf "$CACHE_DIR"
rm -f "$PORT_FILE" "$SERVE_OUT" "$RESTART_OUT"

echo "== bench-load smoke (open-loop load: keep-alive tiers + graceful shedding)"
# A reduced run of the open-loop concurrent load generator: warm
# keep-alive tiers must answer byte-identically to the offline CLI, and
# a synchronized cold burst against a 1-worker / depth-2 daemon must
# shed the overflow with 429 + X-Tcor-Retry-After-Ms — never a 5xx,
# never a reset — then drain cleanly. The bench enforces all of that
# internally (nonzero exit on any violation); the greps additionally
# pin the written record.
BENCH_LOAD_OUT=/tmp/tcor-ci-bench-load.json
rm -f "$BENCH_LOAD_OUT"
"$TCOR_SIM" bench-load "$BENCH_LOAD_OUT" --smoke 2>/dev/null
for want in '"server_5xx":0' '"transport_errors":0' '"clean_drain":true'; do
  if ! grep -q "$want" "$BENCH_LOAD_OUT"; then
    echo "ci: FAIL: bench-load record is missing $want" >&2
    exit 1
  fi
done
if grep -q '"shed":0' "$BENCH_LOAD_OUT"; then
  echo "ci: FAIL: the overload burst shed nothing" >&2
  exit 1
fi
rm -f "$BENCH_LOAD_OUT"

echo "== chaos (disk-fault schedule: breaker must open, probe, and close)"
# A seeded disk-fault schedule (every read and write errors until its
# budget runs out) against a cache-cap-1 daemon: the circuit breaker
# must trip open, half-open probe while the faults last, and close once
# the budget is exhausted — while every answered body stays
# byte-identical and the daemon drains to exit 0.
"$TCOR_SIM" chaos --seed 7 --rounds 3 --cache-cap 1 \
  --fault-spec 'pcache/read=100#6,pcache/write=100#4' \
  --breaker-threshold 3 --breaker-cooldown-ms 250 \
  --expect-breaker --retries 4 --backoff-ms 40 2>/dev/null

echo "== chaos (kill/restart + serve faults: retried to byte-identical bodies)"
# SIGKILL the daemon every 3 answered requests while the serve plane
# drops connections mid-body, corrupts responses (caught by the
# X-Tcor-Body-Hash check), and stalls reads. The retrying client must
# still get byte-identical bodies for every request, and the final
# generation must drain to exit 0. Writes BENCH_chaos.json.
"$TCOR_SIM" chaos --seed 1337 --rounds 6 --kill-every 3 \
  --fault-spec 'serve/drop_conn=45@30,serve/corrupt_response=35,serve/stall_read=25@60' \
  --retries 6 --backoff-ms 40 --bench-out BENCH_chaos.json 2>/dev/null

echo "ci: all green"
