#!/usr/bin/env bash
# Tier-1 gate. Fully offline: no registry access, no network.
#
#   ./ci.sh            format + lint + build + test + golden check
#
# The golden check regenerates the abstract's headline numbers through
# the parallel runner and compares them bit-for-bit against
# results/golden/ (see README "Parallel runs, telemetry and golden
# results"). Re-record intentional changes with
#   cargo run --release -p tcor-sim -- all --update-golden
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --workspace --release

echo "== cargo test"
cargo test --workspace -q

echo "== golden check (headline)"
cargo run --release -q -p tcor-sim -- headline --check --telemetry /tmp/tcor-ci-telemetry.jsonl >/dev/null

echo "ci: all green"
