//! # tcor-repro
//!
//! Umbrella crate for the TCOR reproduction (HPCA 2022: *TCOR: A Tile Cache
//! with Optimal Replacement*). Re-exports every subsystem so examples,
//! integration tests and downstream users can depend on a single crate.
//!
//! See `README.md` for the architecture overview and `DESIGN.md` for the
//! per-experiment index.

pub use tcor;
pub use tcor_cache as cache;
pub use tcor_common as common;
pub use tcor_energy as energy;
pub use tcor_gpu as gpu;
pub use tcor_mem as mem;
pub use tcor_pbuf as pbuf;
pub use tcor_sim as sim;
pub use tcor_workloads as workloads;
